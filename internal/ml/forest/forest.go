// Package forest implements random forests (Breiman 2001): bootstrap
// aggregation of CART trees with per-split feature subsampling, feature
// importances (used by the monitorless filter step and Table 4), class
// weighting, and an adjustable decision threshold (the paper sets 0.4 to
// bias the classifier against false negatives, §4).
package forest

import (
	"context"
	"fmt"
	"math/rand"

	"monitorless/internal/frame"
	"monitorless/internal/ml"
	"monitorless/internal/ml/tree"
	"monitorless/internal/parallel"
)

// Config holds the forest hyper-parameters, mirroring the axes of the
// paper's Table 2 grid (n_estimators, min_samples_leaf, min_samples_split,
// criterion, class_weight).
type Config struct {
	// NumTrees is the ensemble size (paper: 250 after tuning).
	NumTrees int
	// MaxDepth bounds each tree; 0 = unlimited.
	MaxDepth int
	// MinSamplesSplit / MinSamplesLeaf are CART stopping rules
	// (paper: 20 samples per leaf after tuning).
	MinSamplesSplit int
	MinSamplesLeaf  int
	// Criterion is gini or entropy (paper: information gain = entropy).
	Criterion tree.Criterion
	// MaxFeatures per split; -1 = √d (default), 0 = all.
	MaxFeatures int
	// ClassWeight is "", "balanced" or "subsample" (Table 2).
	ClassWeight string
	// Threshold is the P(saturated) cut-off for Predict (paper: 0.4).
	// Zero selects 0.5.
	Threshold float64
	// Splitter selects the per-tree split search: tree.Best (the exact
	// sorted-scan parity reference, the zero value) or tree.Hist (the
	// histogram path — the training frame is quantized once and shared
	// read-only by every tree). Absent in old gob bundles, which
	// therefore decode to Best.
	Splitter tree.Splitter
	// Bins caps per-column bins for the Hist splitter; 0 = 256.
	Bins int
	// Seed makes training deterministic.
	Seed int64
	// Parallelism bounds the number of concurrently fitted trees;
	// 0 = the parallel pool's default width (GOMAXPROCS or the
	// -parallel flag override).
	Parallelism int
}

// Forest is a fitted random forest.
type Forest struct {
	cfg         Config
	trees       []*tree.Tree
	importances []float64
	nFeatures   int
	fitted      bool

	// binEdges are the per-feature training bin edges retained by the
	// histogram fit (nil for exact-splitter forests); quant is the
	// compiled quantized predictor built from them, and quantOff is the
	// -quant-predict=false routing override. Both serialize with the
	// forest (bundle v4) so a loaded model predicts quantized without
	// recompiling from raw data.
	binEdges [][]float64
	quant    *QuantForest
	quantOff bool
}

var _ ml.Classifier = (*Forest)(nil)
var _ ml.FeatureImporter = (*Forest)(nil)
var _ ml.FrameFitter = (*Forest)(nil)
var _ ml.FrameProber = (*Forest)(nil)
var _ ml.FramePredictor = (*Forest)(nil)

// New returns an unfitted forest.
func New(cfg Config) *Forest {
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 100
	}
	if cfg.MaxFeatures == 0 {
		cfg.MaxFeatures = -1 // √d, the standard forest default
	} else if cfg.MaxFeatures == -2 {
		cfg.MaxFeatures = 0 // explicit "all features"
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	return &Forest{cfg: cfg}
}

// Fit trains the forest on x, y. It is a thin adapter over the columnar
// path: validate once, transpose once, then FitFrame over the whole frame.
func (f *Forest) Fit(x [][]float64, y []int) error {
	if _, err := ml.ValidateTrainingSet(x, y); err != nil {
		return err
	}
	return f.fitFrame(ml.FrameOf(x), y, nil)
}

// FitFrame trains the forest on the frame rows listed in rows (nil = all
// rows), with y holding one label per frame row (nil = fr.Labels()). The
// frame is shared read-only across all tree-fitting goroutines; every
// bootstrap resample is an index array, never a copied matrix.
func (f *Forest) FitFrame(fr *frame.Frame, y []int, rows []int) error {
	y, err := ml.ValidateFrame(fr, y, rows)
	if err != nil {
		return err
	}
	return f.fitFrame(fr, y, rows)
}

// fitFrame is the shared post-validation fitting path.
func (f *Forest) fitFrame(fr *frame.Frame, y []int, rows []int) error {
	if rows == nil {
		rows = make([]int, fr.Rows())
		for i := range rows {
			rows[i] = i
		}
	}
	// ty is the compact label vector of the training subset, matching what
	// the row-oriented path called y.
	ty := make([]int, len(rows))
	for p, i := range rows {
		ty[p] = y[i]
	}
	baseW, err := ml.ClassWeights(ty, f.cfg.ClassWeight)
	if err != nil {
		return fmt.Errorf("forest: %w", err)
	}

	n := len(rows)
	f.nFeatures = fr.NumCols()
	f.trees = make([]*tree.Tree, f.cfg.NumTrees)

	// Histogram path: quantize the frame exactly once (edges from the
	// training rows, codes for all rows) and share the read-only code
	// slab across every bootstrap resample. Chunk-backed frames stream
	// through the two-pass merge binner — same edges, same codes, never a
	// materialized column — so a hist forest trains on a corpus that
	// never fits in memory (the codes slab is 8× smaller than the data).
	var bn *frame.Binned
	if f.cfg.Splitter == tree.Hist {
		var berr error
		bn, berr = frame.BinFrameChecked(fr, f.cfg.Bins, rows)
		if berr != nil {
			return fmt.Errorf("forest: %w", berr)
		}
	} else if fr.Chunked() {
		// The exact splitter sorts whole columns per node; it has no
		// out-of-core path, so a chunked frame densifies here.
		fr = fr.Materialize()
	}

	// Each tree's bootstrap RNG and tree seed are pure functions of the
	// tree index, and the deterministic pool writes results by index, so
	// the fitted forest is byte-identical at any Parallelism/GOMAXPROCS.
	err = parallel.Do(context.Background(), f.cfg.Parallelism, f.cfg.NumTrees, func(ti int) error {
		rng := rand.New(rand.NewSource(f.cfg.Seed + int64(ti)*7919))
		// Bootstrap sample with replacement: smp maps bootstrap
		// sample -> frame row.
		smp := make([]int, n)
		by := make([]int, n)
		bw := make([]float64, n)
		var n1 int
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			smp[i] = rows[j]
			by[i] = ty[j]
			bw[i] = baseW[j]
			n1 += by[i]
		}
		if f.cfg.ClassWeight == "subsample" {
			// Re-balance inside the bootstrap sample
			// (scikit-learn's class_weight="balanced_subsample").
			n0 := n - n1
			if n0 > 0 && n1 > 0 {
				w0 := float64(n) / (2 * float64(n0))
				w1 := float64(n) / (2 * float64(n1))
				for i := range bw {
					if by[i] == 1 {
						bw[i] = w1
					} else {
						bw[i] = w0
					}
				}
			}
		}

		t := tree.New(tree.Config{
			MaxDepth:        f.cfg.MaxDepth,
			MinSamplesSplit: f.cfg.MinSamplesSplit,
			MinSamplesLeaf:  f.cfg.MinSamplesLeaf,
			Criterion:       f.cfg.Criterion,
			MaxFeatures:     f.cfg.MaxFeatures,
			Bins:            f.cfg.Bins,
			Seed:            f.cfg.Seed + int64(ti)*104729,
		})
		var ferr error
		if bn != nil {
			ferr = t.FitBinnedSamples(bn, smp, by, bw)
		} else {
			ferr = t.FitFrameSamples(fr, smp, by, bw)
		}
		if ferr != nil {
			return fmt.Errorf("forest: tree %d: %w", ti, ferr)
		}
		f.trees[ti] = t
		return nil
	})
	if err != nil {
		return err
	}

	// Average tree importances.
	f.importances = make([]float64, f.nFeatures)
	for _, t := range f.trees {
		for i, v := range t.FeatureImportances() {
			f.importances[i] += v
		}
	}
	sum := 0.0
	for _, v := range f.importances {
		sum += v
	}
	if sum > 0 {
		for i := range f.importances {
			f.importances[i] /= sum
		}
	}
	f.fitted = true
	if bn != nil {
		// Histogram thresholds are exact bin-edge values, so compiling
		// against the training edges lowers every node to a uint8 code
		// compare — batch prediction routes through the quantized path
		// from here on, bit-identical to the float walk. Dimensions match
		// by construction, so a compile error is impossible; degrade to
		// the float path rather than failing the fit if it ever happens.
		if err := f.CompileQuant(bn.Edges()); err != nil {
			f.binEdges, f.quant = nil, nil
		}
	}
	return nil
}

// CompileQuant compiles the fitted forest against the given per-feature
// bin edges and installs the result: subsequent batch prediction routes
// through the quantized path (unless SetQuantPredict(false)). The
// histogram fit calls this automatically with its training edges;
// exact-splitter forests may be compiled explicitly against edges from
// frame.BinFrame — nodes whose thresholds are not edge values keep the
// float side-channel.
func (f *Forest) CompileQuant(edges [][]float64) error {
	q, err := Compile(f, edges)
	if err != nil {
		return err
	}
	f.binEdges = edges
	f.quant = q
	return nil
}

// Quant returns the compiled quantized predictor, or nil when the
// forest has not been compiled (exact-splitter fit, legacy bundle).
func (f *Forest) Quant() *QuantForest { return f.quant }

// QuantActive reports whether batch prediction currently routes through
// the quantized path.
func (f *Forest) QuantActive() bool { return f.quant != nil && !f.quantOff }

// SetQuantPredict toggles quantized batch-prediction routing without
// discarding the compiled form (the cmd-level -quant-predict flags).
func (f *Forest) SetQuantPredict(on bool) { f.quantOff = !on }

// DropQuant discards the compiled quantized form and its edges; the
// forest predicts through the float path and serializes as a pre-v4
// bundle.
func (f *Forest) DropQuant() {
	f.binEdges, f.quant = nil, nil
	f.quantOff = false
}

// BinEdges returns the per-feature edges the quantized predictor was
// compiled against (nil when not compiled; read-only).
func (f *Forest) BinEdges() [][]float64 { return f.binEdges }

// PredictProba returns the mean leaf probability across trees.
func (f *Forest) PredictProba(x []float64) float64 {
	if !f.fitted {
		return 0.5
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.PredictProba(x)
	}
	return s / float64(len(f.trees))
}

// Predict applies the configured decision threshold.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProba(x) >= f.cfg.Threshold {
		return 1
	}
	return 0
}

// PredictProbaFrameRows returns the mean leaf probability for every
// listed frame row (rows nil = all rows) in one batch: each flattened
// tree is walked over all rows before the next tree, so the slab of one
// tree stays hot in cache instead of re-paging the whole ensemble per
// row. The per-row additions happen in the same tree order as
// PredictProba's loop, so the result is bit-identical to calling
// PredictProba row by row.
func (f *Forest) PredictProbaFrameRows(fr *frame.Frame, rows []int) []float64 {
	return f.PredictProbaFrameRowsInto(fr, rows, nil)
}

// PredictProbaFrameRowsInto is PredictProbaFrameRows with a caller-owned
// output buffer: dst is reused when its capacity suffices (the serving
// tick loop passes a per-shard slab so steady-state batch prediction
// allocates nothing). The accumulation order is identical to the
// allocating path, so results stay bit-identical to per-row PredictProba.
func (f *Forest) PredictProbaFrameRowsInto(fr *frame.Frame, rows []int, dst []float64) []float64 {
	n := fr.Rows()
	if rows != nil {
		n = len(rows)
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	if !f.fitted {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i := range out {
		out[i] = 0
	}
	// Compiled quantized path: uint8-code traversal over block-tiled row
	// slabs, bit-identical to the float walk below (every lowered node
	// decides exactly as its float compare would, and per-row tree
	// accumulation order is unchanged). Row lists over chunk-backed
	// frames stay on the float path — it reads cells through the store,
	// while block quantization wants contiguous columns.
	if q := f.quant; q != nil && !f.quantOff && !(fr.Chunked() && rows != nil) {
		q.predictInto(fr, rows, out)
		return out
	}
	if rows == nil && fr.Chunked() {
		// Chunk-backed batch predict: walk each resident chunk through
		// every tree before touching the next chunk, accumulating into the
		// chunk's slice of out. Each row still receives its tree
		// contributions in tree order, so the result is bit-identical to
		// the dense tree-outer walk.
		if err := fr.ForEachChunk(func(base int, ch *frame.Frame) error {
			sub := out[base : base+ch.Rows()]
			for _, t := range f.trees {
				t.AccumProbaFrameRows(ch, nil, sub)
			}
			return nil
		}); err != nil {
			panic(fmt.Sprintf("forest: chunked predict: %v", err))
		}
	} else {
		for _, t := range f.trees {
			t.AccumProbaFrameRows(fr, rows, out)
		}
	}
	nt := float64(len(f.trees))
	for i := range out {
		out[i] /= nt
	}
	return out
}

// PredictFrameRows applies the decision threshold to a batch of rows.
func (f *Forest) PredictFrameRows(fr *frame.Frame, rows []int) []int {
	probs := f.PredictProbaFrameRows(fr, rows)
	out := make([]int, len(probs))
	for i, p := range probs {
		if p >= f.cfg.Threshold {
			out[i] = 1
		}
	}
	return out
}

// SetThreshold adjusts the decision threshold after training (the paper's
// FN/FP asymmetry knob).
func (f *Forest) SetThreshold(t float64) { f.cfg.Threshold = t }

// Threshold returns the active decision threshold.
func (f *Forest) Threshold() float64 { return f.cfg.Threshold }

// FeatureImportances returns the tree-averaged impurity importances.
func (f *Forest) FeatureImportances() []float64 {
	out := make([]float64, len(f.importances))
	copy(out, f.importances)
	return out
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Config returns a copy of the forest's hyper-parameters — the
// champion's recipe a lifecycle retrain reuses for its challenger.
func (f *Forest) Config() Config { return f.cfg }

// Retrain is the model-lifecycle retrain entry point: it fits a fresh
// challenger forest with base's hyper-parameters on the listed frame
// rows (nil = all; y nil = fr.Labels()), forcing the histogram splitter —
// the fast path, since a shadow retrain competes with serving for the
// box — and the given seed so repeated retrains are deterministic
// functions of (reservoir contents, seed). The base forest is not
// modified.
func Retrain(base *Forest, fr *frame.Frame, y []int, rows []int, seed int64) (*Forest, error) {
	if base == nil {
		return nil, fmt.Errorf("forest: retrain: nil base forest")
	}
	cfg := base.Config()
	cfg.Splitter = tree.Hist
	cfg.Seed = seed
	nf := New(cfg)
	if err := nf.FitFrame(fr, y, rows); err != nil {
		return nil, fmt.Errorf("forest: retrain: %w", err)
	}
	return nf, nil
}
