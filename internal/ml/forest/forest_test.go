package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func xorData(n int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		x[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return x, y
}

func noisyBand(n, d int, noise float64, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.Float64()
		}
		x[i] = row
		if row[0]+noise*r.NormFloat64() > 0.6 {
			y[i] = 1
		}
	}
	return x, y
}

func TestForestLearnsXOR(t *testing.T) {
	x, y := xorData(800, 1)
	f := New(Config{NumTrees: 40, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	tx, ty := xorData(300, 77)
	correct := 0
	for i := range tx {
		if f.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.9 {
		t.Errorf("test accuracy %v, want >= 0.9", acc)
	}
}

func TestForestOutperformsNoiseFloor(t *testing.T) {
	x, y := noisyBand(1000, 8, 0.05, 2)
	f := New(Config{NumTrees: 30, MinSamplesLeaf: 5, Seed: 2})
	if err := f.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	tx, ty := noisyBand(400, 8, 0.05, 3)
	correct := 0
	for i := range tx {
		if f.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.9 {
		t.Errorf("test accuracy %v, want >= 0.9", acc)
	}
}

func TestForestImportances(t *testing.T) {
	x, y := noisyBand(600, 6, 0, 4)
	f := New(Config{NumTrees: 25, Seed: 4})
	if err := f.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	imp := f.FeatureImportances()
	if len(imp) != 6 {
		t.Fatalf("len(importances) = %d, want 6", len(imp))
	}
	sum := 0.0
	best := 0
	for i, v := range imp {
		sum += v
		if v > imp[best] {
			best = i
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum %v, want 1", sum)
	}
	if best != 0 {
		t.Errorf("dominant feature %d, want 0", best)
	}
}

func TestForestThreshold(t *testing.T) {
	x, y := noisyBand(500, 3, 0.15, 5)
	f := New(Config{NumTrees: 20, Seed: 5, Threshold: 0.4})
	if err := f.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if f.Threshold() != 0.4 {
		t.Errorf("Threshold() = %v, want 0.4", f.Threshold())
	}
	// A lower threshold can only increase the number of positives.
	tx, _ := noisyBand(300, 3, 0.15, 6)
	countPos := func(thr float64) int {
		f.SetThreshold(thr)
		n := 0
		for _, row := range tx {
			n += f.Predict(row)
		}
		return n
	}
	if countPos(0.2) < countPos(0.8) {
		t.Error("lowering the threshold reduced positive predictions")
	}
}

func TestForestDeterminism(t *testing.T) {
	x, y := noisyBand(300, 4, 0.1, 7)
	f1 := New(Config{NumTrees: 10, Seed: 99})
	f2 := New(Config{NumTrees: 10, Seed: 99})
	if err := f1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		probe := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		if f1.PredictProba(probe) != f2.PredictProba(probe) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestForestClassWeightModes(t *testing.T) {
	x, y := noisyBand(400, 3, 0.1, 8)
	for _, mode := range []string{"", "balanced", "subsample"} {
		f := New(Config{NumTrees: 8, Seed: 8, ClassWeight: mode})
		if err := f.Fit(x, y); err != nil {
			t.Errorf("ClassWeight=%q: %v", mode, err)
		}
	}
	f := New(Config{NumTrees: 4, ClassWeight: "bogus"})
	if err := f.Fit(x, y); err == nil {
		t.Error("expected error for unknown class weight")
	}
}

func TestForestEmptyInput(t *testing.T) {
	f := New(Config{NumTrees: 4})
	if err := f.Fit(nil, nil); err == nil {
		t.Error("expected error for empty training set")
	}
}

func TestForestUnfitted(t *testing.T) {
	f := New(Config{})
	if p := f.PredictProba([]float64{1}); p != 0.5 {
		t.Errorf("unfitted proba %v, want 0.5", p)
	}
}

func TestForestNumTrees(t *testing.T) {
	x, y := noisyBand(200, 2, 0.1, 9)
	f := New(Config{NumTrees: 7, Seed: 9})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 7 {
		t.Errorf("NumTrees = %d, want 7", f.NumTrees())
	}
}

// Property: forest probability is the mean of tree probabilities, hence in
// [0, 1], and monotone under threshold flips.
func TestForestProbaBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(80)
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = []float64{r.NormFloat64(), r.NormFloat64()}
			y[i] = r.Intn(2)
		}
		fr := New(Config{NumTrees: 5, Seed: seed})
		if err := fr.Fit(x, y); err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			p := fr.PredictProba([]float64{r.NormFloat64(), r.NormFloat64()})
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
