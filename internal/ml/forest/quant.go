// Quantized batch inference: a fitted forest is lowered ("compiled")
// into a form whose node thresholds are uint8 bin codes under the
// per-feature edges the histogram trainer binned with. Batch traversal
// then compares one-byte codes over a row slab 8× smaller than the
// float frame, in cache-sized row blocks that are quantized once and
// walked by every tree while resident — the inference-side half of the
// LightGBM-style binning the training path already does.
//
// Bit-identity, not approximation: a node is lowered to a code compare
// only when its float threshold is exactly some edges[c] of its feature,
// and frame.Quantize guarantees code(v) ≤ c ⟺ v ≤ edges[c] for every
// float64 v (±Inf and NaN included). Histogram-trained trees record
// thresholds as exact edge values, so they compile fully quantized;
// nodes whose threshold is not an edge (exact-splitter trees) keep a
// float side-channel and read the source frame directly. Accumulation
// order per row is tree order, the same as the float batch walk, so the
// compiled path returns bit-identical probabilities at any worker count.
//
// Two micro-architectural choices make the compiled walk fast rather
// than merely smaller:
//
//   - The block's code slab is column-major with a fixed 256-byte column
//     stride (codes[slot*256+row]), so block quantization writes each
//     column's codes contiguously, and it replaces the per-value binary
//     search with a per-column uniform grid that maps a value to a
//     starting code in O(1) plus a short scan — the search's 8 dependent
//     loads become ~2.
//   - Fully-quantized trees walk a packed form: one uint32 per node
//     carrying (code threshold, feature slot pre-scaled by the column
//     stride, left child), so a traversal step is two loads and three
//     ALU ops with no data-dependent branch (the child is selected by
//     adding the comparison's sign bit — right = left + 1 by a
//     breadth-first renumbering). Four rows are interleaved per tree so
//     their independent pointer chases overlap instead of serializing
//     on load latency, and four is chosen so the whole walk state stays
//     in registers.
package forest

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"unsafe"

	"monitorless/internal/frame"
	"monitorless/internal/parallel"
)

// quantBlockRows is the row-block tile size: one block's code slab
// (256 × nSlots bytes) stays L1/L2-resident while every tree walks it.
const quantBlockRows = 256

// Packed-node field layout (quantTree.packed): bits 0-7 code threshold,
// 8-15 feature slot, 16-31 left child; nodes are renumbered breadth-
// first at pack time so a node's right child is always left+1 and a
// single 16-bit field addresses both. Because the code slab is
// column-major with a 256-byte stride, `w & 0xff00` IS the slot's byte
// offset into the slab (slot × 256) — the walk extracts it with one
// AND, no shift. A threshold byte of 0xff marks a leaf: real thresholds
// are edge indices, which are < len(edges) ≤ 255 and therefore ≤ 254,
// so 0xff is unreachable for internal nodes — and 0xff ≥ every code, so
// a leaf's compare always "goes left" into its own index (self-loop)
// and rows that finish early spin harmlessly until the whole interleave
// group is done.
const (
	packedShiftFeat = 8
	packedShiftKid  = 16
	packedLeafThr   = 0xff
	packedMaxNodes  = 1 << 16 // the child field is 16-bit
)

// QuantForest is the compiled quantized form of a fitted Forest. It is
// immutable after Compile (safe for concurrent prediction) except for
// the parallelism knob and the internal scratch pool.
type QuantForest struct {
	nFeatures int
	// edges[j] is the ascending bin-edge set of source column j; nil or
	// empty for columns no quantized node tests (single-distinct-value
	// columns, columns the forest never splits on).
	edges [][]float64
	// slotCols maps code-slab slot -> source column: only columns some
	// quantized node actually tests get quantized per block.
	slotCols []int32
	// slotOf maps source column -> slot, -1 when the column needs none.
	slotOf []int32
	// grids[slot] accelerates Quantize for that slot's column (zero value
	// = plain binary search).
	grids []colGrid
	trees []quantTree
	// par bounds block-level parallelism (0 = the pool default width).
	par int
	// nQuant/nFloat count lowered vs side-channel internal nodes.
	nQuant, nFloat int
	pool           sync.Pool // *quantScratch
}

// quantTree is one lowered tree. left/right/fthr/prob alias the source
// tree's compacted slabs (read-only); feat is rewritten so internal
// nodes index the code slab: feat[i] < 0 marks a leaf, flags[i] == 0
// means feat[i] is a code-slab slot compared against qthr[i], and
// flags[i] == 1 means feat[i] is a source column compared against
// fthr[i] in the float domain (the side-channel). packed/pprob are the
// branchless walk form in its own breadth-first numbering, built only
// for fully-quantized trees that fit the 16-bit child field; mixed or
// oversized trees walk the slab form.
type quantTree struct {
	feat   []int32
	left   []int32
	right  []int32
	qthr   []uint8
	flags  []uint8
	fthr   []float64
	prob   []float64
	packed []uint32
	pprob  []float64
	mixed  bool
}

// colGrid is the per-column quantization accelerator: a uniform grid
// over [edges[0], edges[last]] where start[i] counts the edges strictly
// below cell i's value range. Quantizing a finite in-range value is then
// one multiply to find its cell plus a scan over the (few) edges sharing
// it; out-of-range, ±Inf and NaN values fall back to the exact binary
// search, so the result is Quantize's, always.
type colGrid struct {
	lo, scale float64
	gmax      float64 // float64(len(start)), the fast-path bound
	start     []uint8
}

// gridCells is the accelerator resolution multiplier: cells per edge.
// At 16 cells per edge the expected scan past start[] is a sixteenth of
// a step per value — the compare-and-bump loop almost never iterates —
// and a 256-edge column's start table is still only ~4 KiB (uint8
// entries), under the tile's cache budget since quantization touches
// one column's table at a time.
const gridCells = 16

func buildGrid(edges []float64) colGrid {
	// Tiny edge sets search in ≤4 probes anyway; a grid only pays for
	// itself on wide (≈256-bin) columns.
	if len(edges) < 16 {
		return colGrid{}
	}
	lo, hi := edges[0], edges[len(edges)-1]
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || !(hi > lo) {
		return colGrid{}
	}
	g := gridCells * len(edges)
	scale := float64(g) / (hi - lo)
	if math.IsInf(scale, 0) {
		return colGrid{}
	}
	cellOf := func(v float64) int {
		t := (v - lo) * scale
		if !(t >= 0) {
			return -1
		}
		if t >= float64(g) {
			return g
		}
		return int(t)
	}
	// start[i] = #edges whose cell (under the same float formula the
	// lookup uses) is < i. Any value v landing in cell i then satisfies
	// start[i] ≤ code(v): an edge counted here has a smaller cell than v,
	// and the cell map is monotone, so that edge is < v.
	start := make([]uint8, g)
	idx := 0
	for i := range start {
		for idx < len(edges) && cellOf(edges[idx]) < i {
			idx++
		}
		start[i] = uint8(idx)
	}
	return colGrid{lo: lo, scale: scale, gmax: float64(g), start: start}
}

// quantizeCol codes src into dst[i] (one column of the column-major
// slab — contiguous byte stores), matching frame.Quantize bit for bit —
// the grid only shortcuts where the value is finite and inside the edge
// range. The grid path is unrolled four rows deep: the sub→mul→truncate
// chain that turns a value into its grid cell is ~12 cycles of latency,
// so four independent chains in flight bound the loop by throughput
// instead.
func quantizeCol(e []float64, g *colGrid, src []float64, dst []uint8) {
	if g.start == nil {
		for i, v := range src {
			dst[i] = frame.Quantize(e, v)
		}
		return
	}
	lo, scale, gmax, start := g.lo, g.scale, g.gmax, g.start
	n := len(e)
	i := 0
	for ; i+4 <= len(src); i += 4 {
		v0, v1, v2, v3 := src[i], src[i+1], src[i+2], src[i+3]
		t0 := (v0 - lo) * scale
		t1 := (v1 - lo) * scale
		t2 := (v2 - lo) * scale
		t3 := (v3 - lo) * scale
		var c0, c1, c2, c3 int
		if t0 >= 0 && t0 < gmax {
			c0 = int(start[int(t0)])
			for c0 < n && e[c0] < v0 {
				c0++
			}
		} else {
			c0 = int(frame.Quantize(e, v0))
		}
		if t1 >= 0 && t1 < gmax {
			c1 = int(start[int(t1)])
			for c1 < n && e[c1] < v1 {
				c1++
			}
		} else {
			c1 = int(frame.Quantize(e, v1))
		}
		if t2 >= 0 && t2 < gmax {
			c2 = int(start[int(t2)])
			for c2 < n && e[c2] < v2 {
				c2++
			}
		} else {
			c2 = int(frame.Quantize(e, v2))
		}
		if t3 >= 0 && t3 < gmax {
			c3 = int(start[int(t3)])
			for c3 < n && e[c3] < v3 {
				c3++
			}
		} else {
			c3 = int(frame.Quantize(e, v3))
		}
		dst[i+0] = uint8(c0)
		dst[i+1] = uint8(c1)
		dst[i+2] = uint8(c2)
		dst[i+3] = uint8(c3)
	}
	for ; i < len(src); i++ {
		v := src[i]
		var c int
		if t := (v - lo) * scale; t >= 0 && t < gmax {
			c = int(start[int(t)])
			for c < n && e[c] < v {
				c++
			}
		} else {
			c = int(frame.Quantize(e, v))
		}
		dst[i] = uint8(c)
	}
}

type quantScratch struct {
	codes []uint8
	gath  []float64
}

// Compile lowers a fitted SoA forest into its quantized form against the
// given per-source-column bin edges (edges[j] ascending, nil/empty for
// columns without a useful binning). It does not modify f. Every node
// whose threshold coincides exactly with an edge of its feature becomes
// a uint8 code compare; the rest keep the float side-channel. A
// histogram-trained forest compiled against its own training edges is
// fully quantized by construction (hist thresholds are edge values).
func Compile(f *Forest, edges [][]float64) (*QuantForest, error) {
	if f == nil || !f.fitted {
		return nil, fmt.Errorf("forest: compile: forest is not fitted")
	}
	if len(edges) != f.nFeatures {
		return nil, fmt.Errorf("forest: compile: %d edge sets for %d features", len(edges), f.nFeatures)
	}
	q := &QuantForest{
		nFeatures: f.nFeatures,
		edges:     edges,
		par:       f.cfg.Parallelism,
		trees:     make([]quantTree, 0, len(f.trees)),
	}
	// Pass 1: find the columns some quantizable node tests — only those
	// need a slot in the per-block code slab. Columns tested exclusively
	// through the float side-channel (and columns never split on at all)
	// are skipped entirely by block quantization.
	used := make([]bool, f.nFeatures)
	for _, t := range f.trees {
		feat, _, _, thr, _ := t.Slabs()
		for i, fc := range feat {
			if fc < 0 {
				continue
			}
			if _, ok := edgeIndex(edges[fc], thr[i]); ok {
				used[fc] = true
			}
		}
	}
	q.slotOf = make([]int32, f.nFeatures)
	for j := range q.slotOf {
		q.slotOf[j] = -1
	}
	for j, u := range used {
		if u {
			q.slotOf[j] = int32(len(q.slotCols))
			q.slotCols = append(q.slotCols, int32(j))
		}
	}
	// The packed walk form carries the slot in 8 bits; more distinct
	// tested columns than that (impossible at the paper's feature counts,
	// but cheap to guard) just means the slab walk form everywhere.
	packable := len(q.slotCols) <= 256
	q.grids = make([]colGrid, len(q.slotCols))
	for si, col := range q.slotCols {
		q.grids[si] = buildGrid(edges[col])
	}
	// Pass 2: lower each tree. The float slabs are aliased, never copied.
	for _, t := range f.trees {
		feat, left, right, thr, prob := t.Slabs()
		qt := quantTree{
			feat:  make([]int32, len(feat)),
			left:  left,
			right: right,
			qthr:  make([]uint8, len(feat)),
			flags: make([]uint8, len(feat)),
			fthr:  thr,
			prob:  prob,
		}
		for i, fc := range feat {
			if fc < 0 {
				qt.feat[i] = -1
				continue
			}
			if c, ok := edgeIndex(edges[fc], thr[i]); ok {
				qt.feat[i] = q.slotOf[fc]
				qt.qthr[i] = uint8(c)
				q.nQuant++
			} else {
				qt.feat[i] = fc
				qt.flags[i] = 1
				qt.mixed = true
				q.nFloat++
			}
		}
		if !qt.mixed && packable && len(feat) <= packedMaxNodes {
			qt.packed, qt.pprob = packTree(&qt)
		}
		q.trees = append(q.trees, qt)
	}
	return q, nil
}

// packTree builds the branchless walk form of a fully-quantized tree:
// one uint32 per node in a breadth-first renumbering that makes every
// right child its left sibling + 1, plus the leaf probabilities in the
// same numbering. Leaves carry the reserved threshold 0xff, slot 0, and
// self-loop through their left field.
func packTree(qt *quantTree) ([]uint32, []float64) {
	n := len(qt.feat)
	// Pass 1: breadth-first order. Children are appended as a pair, so
	// the right child's new index is always the left's + 1.
	order := make([]int32, 1, n)
	newIdx := make([]int32, n)
	for qi := 0; qi < len(order); qi++ {
		old := order[qi]
		newIdx[old] = int32(qi)
		if qt.feat[old] >= 0 {
			order = append(order, qt.left[old], qt.right[old])
		}
	}
	packed := make([]uint32, len(order))
	prob := make([]float64, len(order))
	for ni, old := range order {
		prob[ni] = qt.prob[old]
		if qt.feat[old] < 0 {
			packed[ni] = packedLeafThr | uint32(ni)<<packedShiftKid
			continue
		}
		packed[ni] = uint32(qt.qthr[old]) |
			uint32(uint8(qt.feat[old]))<<packedShiftFeat |
			uint32(uint16(newIdx[qt.left[old]]))<<packedShiftKid
	}
	return packed, prob
}

// edgeIndex reports whether thr is exactly one of the ascending edges,
// and at which index. Exact float equality is required: the quantized
// compare "code ≤ c" is bit-identical to "v ≤ thr" only when thr is
// edges[c] itself.
func edgeIndex(edges []float64, thr float64) (int, bool) {
	c := sort.SearchFloat64s(edges, thr)
	if c < len(edges) && edges[c] == thr {
		return c, true
	}
	return 0, false
}

// NumTrees returns the ensemble size.
func (q *QuantForest) NumTrees() int { return len(q.trees) }

// NumSlots returns how many source columns the per-block quantization
// touches (the code slab is NumSlots × blockRows bytes).
func (q *QuantForest) NumSlots() int { return len(q.slotCols) }

// QuantNodes returns the number of internal nodes lowered to uint8
// code compares.
func (q *QuantForest) QuantNodes() int { return q.nQuant }

// FloatNodes returns the number of internal nodes kept on the float
// side-channel (0 for a histogram-trained forest compiled against its
// training edges).
func (q *QuantForest) FloatNodes() int { return q.nFloat }

// FullyQuantized reports whether every internal node compares codes.
func (q *QuantForest) FullyQuantized() bool { return q.nFloat == 0 }

// Edges returns the per-column edge sets the predictor was compiled
// against (read-only; aliased, not copied).
func (q *QuantForest) Edges() [][]float64 { return q.edges }

// SetParallelism bounds block-level fan-out (0 = pool default, 1 =
// serial). Prediction output is bit-identical at any setting.
func (q *QuantForest) SetParallelism(n int) { q.par = n }

func (q *QuantForest) getScratch() *quantScratch {
	s, _ := q.pool.Get().(*quantScratch)
	need := len(q.slotCols) * quantBlockRows
	if s == nil || cap(s.codes) < need {
		s = &quantScratch{codes: make([]uint8, need), gath: make([]float64, quantBlockRows)}
	}
	return s
}

// predictInto accumulates mean leaf probabilities for the listed rows
// into out (caller-zeroed, len n). rows nil = every frame row; chunked
// frames iterate ForEachChunk with per-chunk block tiling, so an
// out-of-core corpus scores without densifying. rows != nil requires a
// dense frame (the Forest router falls back to the float path for row
// lists over chunked frames).
func (q *QuantForest) predictInto(fr *frame.Frame, rows []int, out []float64) {
	if rows == nil {
		if err := fr.ForEachChunk(func(base int, ch *frame.Frame) error {
			q.accumRange(ch, nil, out[base:base+ch.Rows()])
			return nil
		}); err != nil {
			panic(fmt.Sprintf("forest: quantized chunked predict: %v", err))
		}
	} else {
		q.accumRange(fr, rows, out)
	}
	nt := float64(len(q.trees))
	for i := range out {
		out[i] /= nt
	}
}

// accumRange tiles len(out) rows into quantBlockRows blocks and fans the
// blocks out. Each block writes a disjoint out sub-slice and accumulates
// trees in index order within it, so the result is bit-identical at any
// worker count. Single-block batches (the serving shard path) and
// explicit parallelism 1 run inline with zero closure allocation.
func (q *QuantForest) accumRange(fr *frame.Frame, rows []int, out []float64) {
	n := len(out)
	nBlocks := (n + quantBlockRows - 1) / quantBlockRows
	workers := q.par
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers == 1 || nBlocks == 1 {
		for b := 0; b < nBlocks; b++ {
			lo := b * quantBlockRows
			hi := min(lo+quantBlockRows, n)
			q.runBlock(fr, rows, lo, hi, out)
		}
		return
	}
	// fn never returns an error and the context never cancels, so the
	// pool error is structurally nil.
	_ = parallel.Do(context.Background(), workers, nBlocks, func(b int) error {
		lo := b * quantBlockRows
		hi := min(lo+quantBlockRows, n)
		q.runBlock(fr, rows, lo, hi, out)
		return nil
	})
}

// runBlock quantizes rows [lo, hi) of the batch into a pooled
// column-major code slab — codes[slot*quantBlockRows+r], each column's
// codes contiguous with a fixed 256-byte stride — then walks every tree
// over the resident block, accumulating into out[lo:hi]. The stride is
// fixed (not the block length) so the packed walk can fold slot×stride
// into the node word at compile time; short tail blocks just leave the
// slab's upper rows stale and unread.
func (q *QuantForest) runBlock(fr *frame.Frame, rows []int, lo, hi int, out []float64) {
	bl := hi - lo
	ns := len(q.slotCols)
	s := q.getScratch()
	codes := s.codes[:ns*quantBlockRows]
	for si, col := range q.slotCols {
		var src []float64
		if rows == nil {
			src = fr.Col(int(col))[lo:hi]
		} else {
			full := fr.Col(int(col))
			src = s.gath[:bl]
			for i, ri := range rows[lo:hi] {
				src[i] = full[ri]
			}
		}
		quantizeCol(q.edges[col], &q.grids[si], src, codes[si*quantBlockRows:])
	}
	outB := out[lo:hi]
	// The float side-channel reads the source frame per node visit; the
	// accessor is hoisted so mixed trees share one closure per block.
	var at func(r int, col int32) float64
	for ti := range q.trees {
		qt := &q.trees[ti]
		switch {
		case qt.packed != nil:
			qt.accumBlockPacked(codes, outB)
		case !qt.mixed:
			qt.accumBlockQuant(codes, outB)
		default:
			if at == nil {
				if rows == nil {
					at = func(r int, col int32) float64 { return fr.At(lo+r, int(col)) }
				} else {
					at = func(r int, col int32) float64 { return fr.At(rows[lo+r], int(col)) }
				}
			}
			qt.accumBlockMixed(codes, at, outB)
		}
	}
	q.pool.Put(s)
}

// accumBlockPacked is the hot kernel. Four rows advance through the
// tree together: each step is two loads (packed node word, row's code
// byte) plus shift/mask ALU, and the child pointer is selected by the
// comparison's sign bit — no data-dependent branch, so the four
// independent chases pipeline instead of serializing on load latency.
// Rows that reach a leaf early self-loop until the group's AND-ed leaf
// bits end the walk; per-row probabilities are then added in row order.
// Four (not eight) rows per group because the working set — four node
// indices, four node words, one code base, and the node-table base — is
// what fits in registers; an eight-row group spills half its state to
// the stack and puts store-forward latency on the critical
// pointer-chase chain. The column-major slab makes all four lanes share
// one base pointer (lane offsets are the constants 0..3), which is what
// gets the working set down to register size.
//
// The loads go through unsafe pointers (like frame's slab reinterpret
// casts) because eight bounds checks per level cost more than the
// arithmetic: every index is structurally in range — node indices come
// from the packed 16-bit child fields of the same tree, and code
// offsets are slot*256 + row with slot < ns and row < the block length.
func (qt *quantTree) accumBlockPacked(codes []uint8, out []float64) {
	packed, prob := qt.packed, qt.pprob
	pp := unsafe.Pointer(unsafe.SliceData(packed))
	rp := unsafe.Pointer(unsafe.SliceData(prob))
	op := unsafe.Pointer(unsafe.SliceData(out))
	cb := unsafe.Pointer(unsafe.SliceData(codes))
	n := len(out)
	r := 0
	for ; r+4 <= n; r += 4 {
		cg := unsafe.Add(cb, r) // lane i's code for slot s is cg[s*256+i]
		var k0, k1, k2, k3 uintptr
		for {
			w0 := *(*uint32)(unsafe.Add(pp, k0*4))
			w1 := *(*uint32)(unsafe.Add(pp, k1*4))
			w2 := *(*uint32)(unsafe.Add(pp, k2*4))
			w3 := *(*uint32)(unsafe.Add(pp, k3*4))
			// All four at leaves ⟺ the AND of the threshold bytes is the
			// reserved 0xff (internal thresholds are ≤ 254, so each clears
			// at least one bit). Checked every other level: finished lanes
			// self-loop, so the extra un-checked step is harmless, and the
			// saved compare+branch outweighs the occasional spin level.
			if w0&w1&w2&w3&0xff == packedLeafThr {
				break
			}
			k0 = packedStep(w0, cg, 0)
			k1 = packedStep(w1, cg, 1)
			k2 = packedStep(w2, cg, 2)
			k3 = packedStep(w3, cg, 3)
			w0 = *(*uint32)(unsafe.Add(pp, k0*4))
			w1 = *(*uint32)(unsafe.Add(pp, k1*4))
			w2 = *(*uint32)(unsafe.Add(pp, k2*4))
			w3 = *(*uint32)(unsafe.Add(pp, k3*4))
			k0 = packedStep(w0, cg, 0)
			k1 = packedStep(w1, cg, 1)
			k2 = packedStep(w2, cg, 2)
			k3 = packedStep(w3, cg, 3)
		}
		ob := unsafe.Add(op, r*8)
		*(*float64)(ob) += *(*float64)(unsafe.Add(rp, k0*8))
		*(*float64)(unsafe.Add(ob, 8)) += *(*float64)(unsafe.Add(rp, k1*8))
		*(*float64)(unsafe.Add(ob, 16)) += *(*float64)(unsafe.Add(rp, k2*8))
		*(*float64)(unsafe.Add(ob, 24)) += *(*float64)(unsafe.Add(rp, k3*8))
	}
	// Tail rows walk scalar with an early-exit leaf branch.
	for ; r < n; r++ {
		k := 0
		for {
			w := packed[k]
			if w&0xff == packedLeafThr {
				out[r] += prob[k]
				break
			}
			c := codes[int(w&0xff00)+r]
			d := uint32(int32(w&0xff)-int32(c)) >> 31
			k = int(w>>packedShiftKid) + int(d)
		}
	}
}

// packedStep advances one node: load the lane's code byte (w & 0xff00
// is the slot's slab offset, lane its row offset), compare it against
// the packed threshold byte, and add the comparison's sign bit to the
// left-child index (right = left + 1 by the breadth-first renumbering;
// a leaf's 0xff threshold keeps the sign bit 0 and its child field
// points at itself).
func packedStep(w uint32, cg unsafe.Pointer, lane uintptr) uintptr {
	c := *(*uint8)(unsafe.Add(cg, uintptr(w&0xff00)+lane))
	d := uint32(int32(w&0xff)-int32(c)) >> 31
	return uintptr(w>>packedShiftKid) + uintptr(d)
}

// accumBlockQuant is the slab-form walk for fully-quantized trees that
// exceed the packed form's 16-bit node indexing or 8-bit slot field:
// byte compares over the column-major slab with an early-exit leaf
// branch.
func (qt *quantTree) accumBlockQuant(codes []uint8, out []float64) {
	feat, left, right, qthr, prob := qt.feat, qt.left, qt.right, qt.qthr, qt.prob
	for r := range out {
		k := int32(0)
		for {
			f := feat[k]
			if f < 0 {
				out[r] += prob[k]
				break
			}
			if codes[int(f)*quantBlockRows+r] <= qthr[k] {
				k = left[k]
			} else {
				k = right[k]
			}
		}
	}
}

// accumBlockMixed walks a tree with float side-channel nodes: quantized
// nodes compare codes, side-channel nodes read the source value through
// at and compare in the float domain — bit-identical to the pure float
// walk on both node kinds.
func (qt *quantTree) accumBlockMixed(codes []uint8, at func(r int, col int32) float64, out []float64) {
	for r := range out {
		k := int32(0)
		for {
			f := qt.feat[k]
			if f < 0 {
				out[r] += qt.prob[k]
				break
			}
			var goLeft bool
			if qt.flags[k] != 0 {
				goLeft = at(r, f) <= qt.fthr[k]
			} else {
				goLeft = codes[int(f)*quantBlockRows+r] <= qt.qthr[k]
			}
			if goLeft {
				k = qt.left[k]
			} else {
				k = qt.right[k]
			}
		}
	}
}

// wireThresholds flattens the compiled per-tree code thresholds and
// side-channel flags for bundle serialization (the v4 compiled form).
func (q *QuantForest) wireThresholds() (qthr, flags [][]uint8) {
	qthr = make([][]uint8, len(q.trees))
	flags = make([][]uint8, len(q.trees))
	for i := range q.trees {
		qthr[i] = q.trees[i].qthr
		flags[i] = q.trees[i].flags
	}
	return qthr, flags
}

// checkWire verifies stored compiled thresholds against this (freshly
// recompiled) form — the bundle loader's integrity check that a v4 file
// was not corrupted between the schema hash and the forest blob.
func (q *QuantForest) checkWire(qthr, flags [][]uint8) error {
	if len(qthr) != len(q.trees) || len(flags) != len(q.trees) {
		return fmt.Errorf("forest: quantized form: %d/%d stored threshold sets for %d trees",
			len(qthr), len(flags), len(q.trees))
	}
	for i := range q.trees {
		if !bytesEqual(qthr[i], q.trees[i].qthr) || !bytesEqual(flags[i], q.trees[i].flags) {
			return fmt.Errorf("forest: quantized form: tree %d stored code thresholds diverge from recompiled form (corrupt bundle)", i)
		}
	}
	return nil
}

func bytesEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
