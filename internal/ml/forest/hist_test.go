package forest

import (
	"bytes"
	"testing"

	"monitorless/internal/ml"
	"monitorless/internal/ml/tree"
	"monitorless/internal/parallel"
)

func fitGob(t *testing.T, cfg Config, x [][]float64, y []int, workers int) []byte {
	t.Helper()
	parallel.SetDefaultWorkers(workers)
	defer parallel.SetDefaultWorkers(0)
	f := New(cfg)
	if err := f.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	b, err := f.GobEncode()
	if err != nil {
		t.Fatalf("gob: %v", err)
	}
	return b
}

// Tree fitting fans out across the deterministic pool; the fitted forest
// must be gob-byte-identical at any worker count, for both the exact and
// the histogram splitter.
func TestForestDeterministicAcrossWorkers(t *testing.T) {
	x, y := noisyBand(600, 6, 0.1, 3)
	for _, sp := range []tree.Splitter{tree.Best, tree.Hist} {
		cfg := Config{NumTrees: 12, MinSamplesLeaf: 3, Splitter: sp, Seed: 9}
		one := fitGob(t, cfg, x, y, 1)
		eight := fitGob(t, cfg, x, y, 8)
		if !bytes.Equal(one, eight) {
			t.Errorf("splitter %v: forest differs between 1 and 8 workers", sp)
		}
		// Parallelism is itself a Config field (so the gob bytes differ);
		// the fitted trees must still predict bit-identically.
		seqCfg := cfg
		seqCfg.Parallelism = 1
		seq := New(seqCfg)
		if err := seq.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		var pool Forest
		if err := pool.GobDecode(one); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if a, b := pool.PredictProba(x[i]), seq.PredictProba(x[i]); a != b {
				t.Fatalf("splitter %v row %d: pool proba %v, Parallelism=1 proba %v", sp, i, a, b)
			}
		}
	}
}

// The histogram forest is an approximation of the exact forest, not a
// different model: on held-out data the two must agree on nearly every
// prediction.
func TestForestHistCloseToExact(t *testing.T) {
	x, y := noisyBand(900, 6, 0.1, 5)
	tx, ty := noisyBand(400, 6, 0.1, 6)

	fit := func(sp tree.Splitter) *Forest {
		f := New(Config{NumTrees: 25, MinSamplesLeaf: 5, Splitter: sp, Seed: 11})
		if err := f.Fit(x, y); err != nil {
			t.Fatalf("Fit(%v): %v", sp, err)
		}
		return f
	}
	exact, hist := fit(tree.Best), fit(tree.Hist)

	acc := func(f *Forest) float64 {
		correct := 0
		for i := range tx {
			if f.Predict(tx[i]) == ty[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(tx))
	}
	accE, accH := acc(exact), acc(hist)
	if accH < accE-0.03 {
		t.Errorf("hist accuracy %.3f trails exact %.3f by more than 0.03", accH, accE)
	}

	agree := 0
	for i := range tx {
		if exact.Predict(tx[i]) == hist.Predict(tx[i]) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(tx)); frac < 0.95 {
		t.Errorf("exact and hist forests agree on %.3f of rows, want >= 0.95", frac)
	}
}

// Batch inference is a pure layout optimization: PredictProbaFrameRows
// must be bit-identical to the per-row PredictProba loop, for both a rows
// subset and the whole frame, and PredictFrameRows must match Predict.
func TestForestBatchPredictBitIdentical(t *testing.T) {
	x, y := noisyBand(500, 5, 0.1, 7)
	f := New(Config{NumTrees: 15, MinSamplesLeaf: 4, Threshold: 0.4, Seed: 2})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	px, _ := noisyBand(200, 5, 0.1, 8)
	fr := ml.FrameOf(px)

	all := f.PredictProbaFrameRows(fr, nil)
	cls := f.PredictFrameRows(fr, nil)
	for i, row := range px {
		if want := f.PredictProba(row); all[i] != want {
			t.Fatalf("row %d: batch proba %v, per-row %v", i, all[i], want)
		}
		if want := f.Predict(row); cls[i] != want {
			t.Fatalf("row %d: batch class %d, per-row %d", i, cls[i], want)
		}
	}

	rows := []int{5, 0, 199, 42, 42, 7}
	sub := f.PredictProbaFrameRows(fr, rows)
	for p, i := range rows {
		if want := f.PredictProba(px[i]); sub[p] != want {
			t.Fatalf("subset pos %d (row %d): %v vs %v", p, i, sub[p], want)
		}
	}
}

func TestForestBatchPredictUnfitted(t *testing.T) {
	f := New(Config{NumTrees: 3})
	fr := ml.FrameOf([][]float64{{1, 2}, {3, 4}})
	for _, p := range f.PredictProbaFrameRows(fr, nil) {
		if p != 0.5 {
			t.Fatalf("unfitted batch proba = %v, want 0.5", p)
		}
	}
}
