//go:build !race

package forest

const raceEnabled = false
