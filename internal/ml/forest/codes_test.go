package forest

import (
	"testing"

	"monitorless/internal/frame"
	"monitorless/internal/ml"
	"monitorless/internal/ml/tree"
)

// transposeCols turns row-major samples into the column-major layout the
// fused ingest path hands QuantizeBatch.
func transposeCols(x [][]float64) [][]float64 {
	cols := make([][]float64, len(x[0]))
	for j := range cols {
		c := make([]float64, len(x))
		for i := range x {
			c[i] = x[i][j]
		}
		cols[j] = c
	}
	return cols
}

// TestPredictCodesBitIdentical: quantizing feature columns into a
// caller-owned slab and walking it must reproduce the regular quantized
// predict (and therefore the float walk) bit for bit, across multiple
// blocks and at any block-level parallelism.
func TestPredictCodesBitIdentical(t *testing.T) {
	x, y := quantData(2100, 7) // 9 blocks at 256 rows/block
	f := fitQuantForest(t, x, y, tree.Hist)
	fr := ml.FrameOf(x)
	q := f.Quant()
	want := floatProbs(f, fr, nil)

	cols := transposeCols(x)
	var codes []uint8
	var err error
	codes, err = q.QuantizeBatch(cols, len(x), codes)
	if err != nil {
		t.Fatalf("quantize batch: %v", err)
	}
	out := make([]float64, len(x))
	for _, w := range []int{1, 2, 4, 8, 0} {
		q.SetParallelism(w)
		if err := q.PredictProbaCodes(codes, out); err != nil {
			t.Fatalf("predict codes (par %d): %v", w, err)
		}
		assertBitIdentical(t, "codes vs float", want, out)
	}
	q.SetParallelism(0)

	// Short batches (single partial block — the serving shard regime).
	short := 37
	codes, err = q.QuantizeBatch(cols, short, codes)
	if err != nil {
		t.Fatalf("quantize short batch: %v", err)
	}
	outS := make([]float64, short)
	if err := q.PredictProbaCodes(codes, outS); err != nil {
		t.Fatalf("predict short codes: %v", err)
	}
	assertBitIdentical(t, "short batch", want[:short], outS)
}

// TestPredictCodesRejects pins the refusal paths: partially-quantized
// forests (float side-channel nodes need source values the slab doesn't
// carry), undersized slabs, and wrong column counts.
func TestPredictCodesRejects(t *testing.T) {
	x, y := quantData(1200, 9)
	f := fitQuantForest(t, x, y, tree.Best)
	fr := ml.FrameOf(x)
	bn := frame.BinFrame(fr, 0, nil)
	if err := f.CompileQuant(bn.Edges()); err != nil {
		t.Fatalf("compile: %v", err)
	}
	q := f.Quant()
	if q.FullyQuantized() {
		t.Fatal("exact forest unexpectedly fully quantized; test premise broken")
	}
	if err := q.PredictProbaCodes(make([]uint8, q.NumSlots()*q.BlockRows()), make([]float64, 8)); err == nil {
		t.Fatal("partially-quantized forest must refuse the codes path")
	}

	xh, yh := quantData(400, 3)
	fh := fitQuantForest(t, xh, yh, tree.Hist)
	qh := fh.Quant()
	cols := transposeCols(xh)
	if _, err := qh.QuantizeBatch(cols[:2], len(xh), nil); err == nil {
		t.Fatal("wrong column count must fail")
	}
	if _, err := qh.QuantizeBatch(cols, len(xh)+1, nil); err == nil {
		t.Fatal("rows beyond column length must fail")
	}
	codes, err := qh.QuantizeBatch(cols, len(xh), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := qh.PredictProbaCodes(codes[:len(codes)-1], make([]float64, len(xh))); err == nil {
		t.Fatal("undersized slab must fail")
	}
}

// TestPredictCodesAllocations: the fused path with caller-owned slab and
// output must allocate nothing once the slab is sized — it is the serving
// ingest hot loop.
func TestPredictCodesAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	x, y := quantData(600, 5)
	f := fitQuantForest(t, x, y, tree.Hist)
	q := f.Quant()
	q.SetParallelism(1)
	defer q.SetParallelism(0)
	cols := transposeCols(x)
	codes, err := q.QuantizeBatch(cols, len(x), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(x))
	if n := testing.AllocsPerRun(50, func() {
		var err error
		codes, err = q.QuantizeBatch(cols, len(x), codes)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.PredictProbaCodes(codes, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("fused quantize+walk: %v allocs/op, want 0", n)
	}
}
