//go:build race

package forest

// raceEnabled reports whether the race detector is instrumenting this
// build. Under race, sync.Pool deliberately drops items at random
// (poolRaceHack), so pooled-scratch allocation counts are meaningless.
const raceEnabled = true
