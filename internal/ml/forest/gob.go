package forest

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"monitorless/internal/ml/tree"
)

// forestWire mirrors Forest for gob encoding.
type forestWire struct {
	Cfg         Config
	Trees       []*tree.Tree
	Importances []float64
	NFeatures   int
	Fitted      bool
}

// GobEncode implements gob.GobEncoder.
func (f *Forest) GobEncode() ([]byte, error) {
	w := forestWire{
		Cfg:         f.cfg,
		Trees:       f.trees,
		Importances: f.importances,
		NFeatures:   f.nFeatures,
		Fitted:      f.fitted,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("forest: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (f *Forest) GobDecode(data []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("forest: gob decode: %w", err)
	}
	f.cfg = w.Cfg
	f.trees = w.Trees
	f.importances = w.Importances
	f.nFeatures = w.NFeatures
	f.fitted = w.Fitted
	return nil
}
