package forest

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"monitorless/internal/ml/tree"
)

// forestWire mirrors Forest for gob encoding. BinEdges/QuantThr/
// QuantFlags carry the compiled quantized form (bundle v4): the
// per-feature bin edges plus each tree's node code thresholds and float
// side-channel flags. They are nil for uncompiled forests, and gob drops
// unknown stream fields, so pre-v4 readers and writers interoperate with
// this shape in both directions.
type forestWire struct {
	Cfg         Config
	Trees       []*tree.Tree
	Importances []float64
	NFeatures   int
	Fitted      bool
	BinEdges    [][]float64
	QuantThr    [][]uint8
	QuantFlags  [][]uint8
}

// GobEncode implements gob.GobEncoder.
func (f *Forest) GobEncode() ([]byte, error) {
	w := forestWire{
		Cfg:         f.cfg,
		Trees:       f.trees,
		Importances: f.importances,
		NFeatures:   f.nFeatures,
		Fitted:      f.fitted,
	}
	if f.quant != nil {
		w.BinEdges = f.binEdges
		w.QuantThr, w.QuantFlags = f.quant.wireThresholds()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("forest: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. A stream carrying bin edges is
// recompiled into its quantized predictor and the stored code
// thresholds are verified against the recompiled form — the compiled
// artifact is checked, never trusted blindly.
func (f *Forest) GobDecode(data []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("forest: gob decode: %w", err)
	}
	f.cfg = w.Cfg
	f.trees = w.Trees
	f.importances = w.Importances
	f.nFeatures = w.NFeatures
	f.fitted = w.Fitted
	f.binEdges, f.quant, f.quantOff = nil, nil, false
	if w.BinEdges != nil {
		if err := f.CompileQuant(w.BinEdges); err != nil {
			return fmt.Errorf("forest: gob decode: %w", err)
		}
		if err := f.quant.checkWire(w.QuantThr, w.QuantFlags); err != nil {
			f.binEdges, f.quant = nil, nil
			return fmt.Errorf("forest: gob decode: %w", err)
		}
	}
	return nil
}
