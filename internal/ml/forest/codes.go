// Code-slab entry points: the fused serving ingest path quantizes
// engineered feature columns straight into a caller-owned block-tiled
// code slab (QuantizeBatch) and walks it (PredictProbaCodes), skipping
// the float frame materialization and the per-block quantize stage of
// the regular predict path. The slab layout, the quantization kernel,
// and the tree-walk kernels are exactly the ones runBlock uses, so the
// fused route is bit-identical to quantizing inside predictInto — same
// codes, same walk, same tree accumulation order, same final division.
package forest

import (
	"context"
	"fmt"

	"monitorless/internal/parallel"
)

// BlockRows exposes the row-block tile size of the code slab layout.
func (q *QuantForest) BlockRows() int { return quantBlockRows }

// QuantizeBatch codes n rows of engineered feature columns (cols[j][k] =
// feature j of row k, the layout features.BatchScratch.Cols produces)
// into the block-tiled column-major slab PredictProbaCodes walks: block
// b's codes for slot si start at (b*NumSlots+si)*BlockRows. Only the
// columns some quantized node actually tests are coded. dst is grown as
// needed and returned; rows past n within the last block are left stale,
// exactly like runBlock's tail blocks.
func (q *QuantForest) QuantizeBatch(cols [][]float64, n int, dst []uint8) ([]uint8, error) {
	if len(cols) != q.nFeatures {
		return dst, fmt.Errorf("forest: quantize batch: %d feature columns, compiled for %d", len(cols), q.nFeatures)
	}
	ns := len(q.slotCols)
	nb := (n + quantBlockRows - 1) / quantBlockRows
	need := nb * ns * quantBlockRows
	if cap(dst) < need {
		dst = make([]uint8, need)
	}
	dst = dst[:need]
	for _, col := range q.slotCols {
		if len(cols[col]) < n {
			return dst, fmt.Errorf("forest: quantize batch: column %d has %d rows, batch has %d", col, len(cols[col]), n)
		}
	}
	for b := 0; b < nb; b++ {
		lo := b * quantBlockRows
		hi := min(lo+quantBlockRows, n)
		slab := dst[b*ns*quantBlockRows:]
		for si, col := range q.slotCols {
			quantizeCol(q.edges[col], &q.grids[si], cols[col][lo:hi], slab[si*quantBlockRows:])
		}
	}
	return dst, nil
}

// PredictProbaCodes accumulates mean leaf probabilities over a
// pre-quantized code slab (QuantizeBatch layout) for len(out) rows.
// Only fully-quantized forests qualify — a float side-channel node would
// need the source values the fused path never materializes; the caller
// routes mixed forests through the float frame instead. Blocks fan out
// under the same parallelism knob as the regular predict path and write
// disjoint out ranges, so the result is bit-identical at any worker
// count — and bit-identical to predictInto over the same rows.
func (q *QuantForest) PredictProbaCodes(codes []uint8, out []float64) error {
	if !q.FullyQuantized() {
		return fmt.Errorf("forest: predict codes: forest has %d float side-channel nodes", q.nFloat)
	}
	n := len(out)
	ns := len(q.slotCols)
	nb := (n + quantBlockRows - 1) / quantBlockRows
	if need := nb * ns * quantBlockRows; len(codes) < need {
		return fmt.Errorf("forest: predict codes: slab has %d bytes, %d rows need %d", len(codes), n, need)
	}
	for i := range out {
		out[i] = 0
	}
	workers := q.par
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers == 1 || nb == 1 {
		for b := 0; b < nb; b++ {
			q.walkBlockCodes(codes, b, ns, out)
		}
	} else {
		// fn never returns an error and the context never cancels, so the
		// pool error is structurally nil.
		_ = parallel.Do(context.Background(), workers, nb, func(b int) error {
			q.walkBlockCodes(codes, b, ns, out)
			return nil
		})
	}
	nt := float64(len(q.trees))
	for i := range out {
		out[i] /= nt
	}
	return nil
}

// walkBlockCodes walks every tree over one resident block of the slab,
// in tree index order, accumulating into the block's disjoint out rows —
// runBlock's walk loop minus the quantize stage (already done) and the
// mixed case (excluded by the FullyQuantized gate).
func (q *QuantForest) walkBlockCodes(codes []uint8, b, ns int, out []float64) {
	lo := b * quantBlockRows
	hi := min(lo+quantBlockRows, len(out))
	cb := codes[b*ns*quantBlockRows:]
	outB := out[lo:hi]
	for ti := range q.trees {
		qt := &q.trees[ti]
		if qt.packed != nil {
			qt.accumBlockPacked(cb, outB)
		} else {
			qt.accumBlockQuant(cb, outB)
		}
	}
}
