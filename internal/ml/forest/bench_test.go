package forest

import (
	"math/rand"
	"testing"

	"monitorless/internal/ml"
	"monitorless/internal/ml/tree"
)

func benchData(n, d int) ([][]float64, []int) {
	r := rand.New(rand.NewSource(3))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		if row[0]+0.3*row[1] > 0.2 {
			y[i] = 1
		}
	}
	return x, y
}

func benchFit(b *testing.B, sp tree.Splitter) {
	x, y := benchData(2000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := New(Config{NumTrees: 30, MinSamplesLeaf: 10, Splitter: sp, Seed: int64(i)})
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B)     { benchFit(b, tree.Best) }
func BenchmarkForestFitHist(b *testing.B) { benchFit(b, tree.Hist) }

func BenchmarkForestPredict(b *testing.B) {
	x, y := benchData(2000, 50)
	f := New(Config{NumTrees: 30, MinSamplesLeaf: 10, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(x[i%len(x)])
	}
}

// BenchmarkForestPredictBatch measures the SoA batch path over a whole
// frame; ns/row is the number to compare against BenchmarkForestPredict.
func BenchmarkForestPredictBatch(b *testing.B) {
	x, y := benchData(2000, 50)
	f := New(Config{NumTrees: 30, MinSamplesLeaf: 10, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	fr := ml.FrameOf(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProbaFrameRows(fr, nil)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(fr.Rows()), "ns/row")
}
