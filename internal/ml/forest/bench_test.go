package forest

import (
	"math/rand"
	"testing"

	"monitorless/internal/frame"
	"monitorless/internal/ml"
	"monitorless/internal/ml/tree"
)

func benchData(n, d int) ([][]float64, []int) {
	r := rand.New(rand.NewSource(3))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		if row[0]+0.3*row[1] > 0.2 {
			y[i] = 1
		}
	}
	return x, y
}

func benchFit(b *testing.B, sp tree.Splitter) {
	x, y := benchData(2000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := New(Config{NumTrees: 30, MinSamplesLeaf: 10, Splitter: sp, Seed: int64(i)})
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B)     { benchFit(b, tree.Best) }
func BenchmarkForestFitHist(b *testing.B) { benchFit(b, tree.Hist) }

func BenchmarkForestPredict(b *testing.B) {
	x, y := benchData(2000, 50)
	f := New(Config{NumTrees: 30, MinSamplesLeaf: 10, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(x[i%len(x)])
	}
}

// benchPredictBatch drives the batch path over the whole frame through
// the caller-owned-buffer entry point, so steady state allocates nothing
// and ns/row measures traversal, not make([]float64, n) churn.
func benchPredictBatch(b *testing.B, f *Forest, fr *frame.Frame) {
	b.Helper()
	dst := make([]float64, fr.Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProbaFrameRowsInto(fr, nil, dst)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(fr.Rows()), "ns/row")
}

// BenchmarkForestPredictBatch measures the float SoA batch path over a
// whole frame; ns/row is the number to compare against
// BenchmarkForestPredict (per-row) and the Quant variants below.
func BenchmarkForestPredictBatch(b *testing.B) {
	x, y := benchData(2000, 50)
	f := New(Config{NumTrees: 30, MinSamplesLeaf: 10, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	benchPredictBatch(b, f, ml.FrameOf(x))
}

// benchHistForest fits the histogram-splitter twin of the forest above:
// same data, same ensemble shape, compiled quantized predictor installed
// by the fit itself.
func benchHistForest(b *testing.B) (*Forest, [][]float64) {
	b.Helper()
	x, y := benchData(2000, 50)
	f := New(Config{NumTrees: 30, MinSamplesLeaf: 10, Splitter: tree.Hist, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	if f.Quant() == nil {
		b.Fatal("hist fit did not compile a quantized predictor")
	}
	return f, x
}

// BenchmarkForestPredictBatchHistFloat is the float tree walk over a
// hist-trained forest — the before side of the quantized comparison on
// the exact same trees.
func BenchmarkForestPredictBatchHistFloat(b *testing.B) {
	f, x := benchHistForest(b)
	f.SetQuantPredict(false)
	benchPredictBatch(b, f, ml.FrameOf(x))
}

// BenchmarkForestPredictBatchQuant is the compiled uint8-code path over
// the same hist-trained forest: row blocks quantized once, trees walked
// over the resident code slab.
func BenchmarkForestPredictBatchQuant(b *testing.B) {
	f, x := benchHistForest(b)
	benchPredictBatch(b, f, ml.FrameOf(x))
}

// BenchmarkForestPredictBatchQuantSerial pins the single-worker quant
// path (the serving-shard regime, where batches are one block and the
// walk runs inline with zero closure allocation).
func BenchmarkForestPredictBatchQuantSerial(b *testing.B) {
	f, x := benchHistForest(b)
	f.Quant().SetParallelism(1)
	benchPredictBatch(b, f, ml.FrameOf(x))
}

// BenchmarkForestPredictBatchQuantChunked scores a chunk-backed frame
// through the quantized path: per-chunk block tiling, no densify.
func BenchmarkForestPredictBatchQuantChunked(b *testing.B) {
	f, x := benchHistForest(b)
	ch, err := frame.Rechunk(ml.FrameOf(x), 512, "")
	if err != nil {
		b.Fatal(err)
	}
	benchPredictBatch(b, f, ch)
}
