package nn

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(n int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(2)
		cx := -1.0
		if c == 1 {
			cx = 1
		}
		x[i] = []float64{cx + 0.4*r.NormFloat64(), 0.4 * r.NormFloat64()}
		y[i] = c
	}
	return x, y
}

func xorData(n int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		x[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return x, y
}

func accOf(n *Net, x [][]float64, y []int) float64 {
	c := 0
	for i := range x {
		if n.Predict(x[i]) == y[i] {
			c++
		}
	}
	return float64(c) / float64(len(x))
}

func TestNetLearnsBlobs(t *testing.T) {
	x, y := blobs(500, 1)
	n := New(Config{Hidden1: 16, Hidden2: 8, Epochs: 40, Seed: 1})
	if err := n.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accOf(n, x, y); acc < 0.95 {
		t.Errorf("accuracy %v, want >= 0.95", acc)
	}
}

func TestNetLearnsXOR(t *testing.T) {
	x, y := xorData(800, 2)
	n := New(Config{Hidden1: 32, Hidden2: 16, Epochs: 150, LearningRate: 0.05, Seed: 2})
	if err := n.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accOf(n, x, y); acc < 0.9 {
		t.Errorf("XOR accuracy %v, want >= 0.9 (MLP should solve XOR)", acc)
	}
}

func TestNetSoftmaxHead(t *testing.T) {
	x, y := blobs(400, 3)
	n := New(Config{Hidden1: 16, Hidden2: 8, Act3: Softmax, Epochs: 40, Seed: 3})
	if err := n.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accOf(n, x, y); acc < 0.95 {
		t.Errorf("softmax accuracy %v, want >= 0.95", acc)
	}
	// Softmax output is a probability.
	for i := 0; i < 20; i++ {
		p := n.PredictProba(x[i])
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("proba %v out of range", p)
		}
	}
}

func TestNetActivationGrid(t *testing.T) {
	// Every activation combination from the paper's Table 2 grid must
	// train without blowing up.
	x, y := blobs(150, 4)
	for _, a1 := range []Activation{ReLU, Sigmoid, Linear} {
		for _, a3 := range []Activation{Sigmoid, Softmax, Linear, ReLU} {
			n := New(Config{Hidden1: 8, Hidden2: 4, Act1: a1, Act2: ReLU, Act3: a3, Epochs: 10, Seed: 4})
			if err := n.Fit(x, y); err != nil {
				t.Errorf("act1=%s act3=%s: %v", a1, a3, err)
				continue
			}
			p := n.PredictProba(x[0])
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Errorf("act1=%s act3=%s produced invalid proba %v", a1, a3, p)
			}
		}
	}
}

func TestNetDeterministic(t *testing.T) {
	x, y := blobs(200, 5)
	n1 := New(Config{Hidden1: 8, Hidden2: 4, Epochs: 5, Seed: 42})
	n2 := New(Config{Hidden1: 8, Hidden2: 4, Epochs: 5, Seed: 42})
	if err := n1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := n2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if n1.PredictProba(x[i]) != n2.PredictProba(x[i]) {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestNetValidation(t *testing.T) {
	n := New(Config{})
	if err := n.Fit(nil, nil); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestNetUnfitted(t *testing.T) {
	n := New(Config{})
	if p := n.PredictProba([]float64{1, 2}); p != 0.5 {
		t.Errorf("unfitted proba %v, want 0.5", p)
	}
}

func TestNetDimensionPanic(t *testing.T) {
	x, y := blobs(100, 6)
	n := New(Config{Hidden1: 4, Hidden2: 4, Epochs: 2, Seed: 6})
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong input dimensionality")
		}
	}()
	n.PredictProba([]float64{1})
}
