// Package nn implements the paper's sixth baseline: a three-layer, fully
// connected, sequential neural network (Table 2 grid: one activation
// function per layer from {softmax, relu, sigmoid, linear}), trained with
// mini-batch SGD + momentum on binary cross-entropy.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"monitorless/internal/ml"
)

// Activation names a layer activation.
type Activation string

// Activations available in the Table 2 grid.
const (
	ReLU    Activation = "relu"
	Sigmoid Activation = "sigmoid"
	Linear  Activation = "linear"
	Softmax Activation = "softmax"
)

// Config defines the network shape and training schedule.
type Config struct {
	// Hidden1, Hidden2 are the hidden layer widths (defaults 64, 32).
	Hidden1, Hidden2 int
	// Act1, Act2, Act3 are the three layer activations (paper's grid).
	// The output layer has width 2 when Act3 == Softmax, else width 1.
	Act1, Act2, Act3 Activation
	// Epochs is the number of passes (default 30).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// LearningRate is the SGD step (default 0.01).
	LearningRate float64
	// Momentum is the SGD momentum (default 0.9).
	Momentum float64
	// Seed makes initialization and shuffling deterministic.
	Seed int64
}

// Net is a fitted three-layer MLP.
type Net struct {
	cfg    Config
	dims   [4]int // input, h1, h2, output
	w      [3][]float64
	b      [3][]float64
	fitted bool
}

var _ ml.Classifier = (*Net)(nil)

// New returns an unfitted network.
func New(cfg Config) *Net {
	if cfg.Hidden1 <= 0 {
		cfg.Hidden1 = 64
	}
	if cfg.Hidden2 <= 0 {
		cfg.Hidden2 = 32
	}
	if cfg.Act1 == "" {
		cfg.Act1 = ReLU
	}
	if cfg.Act2 == "" {
		cfg.Act2 = ReLU
	}
	if cfg.Act3 == "" {
		cfg.Act3 = Sigmoid
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.01
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		cfg.Momentum = 0.9
	}
	return &Net{cfg: cfg}
}

func applyAct(a Activation, v []float64) {
	switch a {
	case ReLU:
		for i := range v {
			if v[i] < 0 {
				v[i] = 0
			}
		}
	case Sigmoid:
		for i := range v {
			v[i] = sigmoid(v[i])
		}
	case Softmax:
		maxV := v[0]
		for _, x := range v {
			if x > maxV {
				maxV = x
			}
		}
		sum := 0.0
		for i := range v {
			v[i] = math.Exp(v[i] - maxV)
			sum += v[i]
		}
		for i := range v {
			v[i] /= sum
		}
	case Linear:
		// identity
	}
}

// actGrad returns dact/dz given the activated output value (for softmax we
// fold the gradient into the cross-entropy delta and return 1).
func actGrad(a Activation, out float64) float64 {
	switch a {
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return out * (1 - out)
	default:
		return 1
	}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains the network with SGD.
func (n *Net) Fit(x [][]float64, y []int) error {
	d, err := ml.ValidateTrainingSet(x, y)
	if err != nil {
		return err
	}
	outDim := 1
	if n.cfg.Act3 == Softmax {
		outDim = 2
	}
	n.dims = [4]int{d, n.cfg.Hidden1, n.cfg.Hidden2, outDim}

	rng := rand.New(rand.NewSource(n.cfg.Seed))
	for l := 0; l < 3; l++ {
		in, out := n.dims[l], n.dims[l+1]
		n.w[l] = make([]float64, in*out)
		n.b[l] = make([]float64, out)
		scale := math.Sqrt(2 / float64(in)) // He init
		for i := range n.w[l] {
			n.w[l][i] = rng.NormFloat64() * scale
		}
	}

	vw := [3][]float64{}
	vb := [3][]float64{}
	for l := 0; l < 3; l++ {
		vw[l] = make([]float64, len(n.w[l]))
		vb[l] = make([]float64, len(n.b[l]))
	}

	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}

	acts := [4][]float64{nil, make([]float64, n.dims[1]), make([]float64, n.dims[2]), make([]float64, n.dims[3])}
	deltas := [3][]float64{make([]float64, n.dims[1]), make([]float64, n.dims[2]), make([]float64, n.dims[3])}

	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for bs := 0; bs < len(order); bs += n.cfg.BatchSize {
			be := bs + n.cfg.BatchSize
			if be > len(order) {
				be = len(order)
			}
			// Accumulate gradients over the batch (stored in velocity via
			// momentum update at batch end).
			gw := [3][]float64{}
			gb := [3][]float64{}
			for l := 0; l < 3; l++ {
				gw[l] = make([]float64, len(n.w[l]))
				gb[l] = make([]float64, len(n.b[l]))
			}
			for _, i := range order[bs:be] {
				acts[0] = x[i]
				n.forward(acts[:])
				n.backward(acts[:], deltas[:], y[i], gw[:], gb[:])
			}
			lr := n.cfg.LearningRate / float64(be-bs)
			for l := 0; l < 3; l++ {
				for k := range n.w[l] {
					vw[l][k] = n.cfg.Momentum*vw[l][k] - lr*gw[l][k]
					n.w[l][k] += vw[l][k]
				}
				for k := range n.b[l] {
					vb[l][k] = n.cfg.Momentum*vb[l][k] - lr*gb[l][k]
					n.b[l][k] += vb[l][k]
				}
			}
		}
	}
	n.fitted = true
	return nil
}

// forward fills acts[1..3] from acts[0].
func (n *Net) forward(acts [][]float64) {
	activations := [3]Activation{n.cfg.Act1, n.cfg.Act2, n.cfg.Act3}
	for l := 0; l < 3; l++ {
		in, out := n.dims[l], n.dims[l+1]
		src, dst := acts[l], acts[l+1]
		for o := 0; o < out; o++ {
			s := n.b[l][o]
			wrow := n.w[l][o*in : (o+1)*in]
			for j, v := range src {
				s += wrow[j] * v
			}
			dst[o] = s
		}
		applyAct(activations[l], dst)
	}
}

// backward accumulates cross-entropy gradients into gw/gb.
func (n *Net) backward(acts, deltas [][]float64, label int, gw, gb [][]float64) {
	activations := [3]Activation{n.cfg.Act1, n.cfg.Act2, n.cfg.Act3}
	out := acts[3]
	dOut := deltas[2]
	switch n.cfg.Act3 {
	case Softmax:
		for o := range out {
			target := 0.0
			if o == label {
				target = 1
			}
			dOut[o] = out[o] - target
		}
	case Sigmoid:
		// Cross-entropy + sigmoid collapses to (p − y).
		dOut[0] = out[0] - float64(label)
	default:
		// Linear/ReLU output trained as logits through an implicit sigmoid.
		p := sigmoid(out[0])
		dOut[0] = (p - float64(label)) * actGrad(activations[2], out[0])
	}

	for l := 2; l >= 0; l-- {
		in := n.dims[l]
		delta := deltas[l]
		src := acts[l]
		for o := range delta {
			gb[l][o] += delta[o]
			wrow := gw[l][o*in : (o+1)*in]
			for j, v := range src {
				wrow[j] += delta[o] * v
			}
		}
		if l == 0 {
			break
		}
		prev := deltas[l-1]
		for j := range prev {
			s := 0.0
			for o := range delta {
				s += n.w[l][o*in+j] * delta[o]
			}
			prev[j] = s * actGrad(activations[l-1], acts[l][j])
		}
	}
}

// PredictProba returns P(y=1 | x).
func (n *Net) PredictProba(x []float64) float64 {
	if !n.fitted {
		return 0.5
	}
	if len(x) != n.dims[0] {
		panic(fmt.Sprintf("nn: input has %d features, model expects %d", len(x), n.dims[0]))
	}
	acts := [4][]float64{x, make([]float64, n.dims[1]), make([]float64, n.dims[2]), make([]float64, n.dims[3])}
	n.forward(acts[:])
	out := acts[3]
	switch n.cfg.Act3 {
	case Softmax:
		return out[1]
	case Sigmoid:
		return out[0]
	default:
		return sigmoid(out[0])
	}
}

// Predict thresholds the probability at 0.5.
func (n *Net) Predict(x []float64) int {
	if n.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}
