package ml

import (
	"math"
	"testing"
)

type constClassifier struct{ p float64 }

func (c constClassifier) Fit(x [][]float64, y []int) error { return nil }
func (c constClassifier) PredictProba(x []float64) float64 { return c.p }
func (c constClassifier) Predict(x []float64) int {
	if c.p >= 0.5 {
		return 1
	}
	return 0
}

func TestValidateTrainingSet(t *testing.T) {
	cases := []struct {
		name    string
		x       [][]float64
		y       []int
		wantD   int
		wantErr bool
	}{
		{"ok", [][]float64{{1, 2}, {3, 4}}, []int{0, 1}, 2, false},
		{"empty", nil, nil, 0, true},
		{"mismatch", [][]float64{{1}}, []int{0, 1}, 0, true},
		{"zero features", [][]float64{{}}, []int{0}, 0, true},
		{"ragged", [][]float64{{1, 2}, {3}}, []int{0, 1}, 0, true},
		{"bad label", [][]float64{{1}}, []int{2}, 0, true},
		{"negative label", [][]float64{{1}}, []int{-1}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ValidateTrainingSet(tc.x, tc.y)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tc.wantErr)
			}
			if !tc.wantErr && d != tc.wantD {
				t.Errorf("d=%d, want %d", d, tc.wantD)
			}
		})
	}
}

func TestClassWeightsUniform(t *testing.T) {
	w, err := ClassWeights([]int{0, 1, 1}, "")
	if err != nil {
		t.Fatalf("ClassWeights: %v", err)
	}
	for i, v := range w {
		if v != 1 {
			t.Errorf("w[%d] = %v, want 1", i, v)
		}
	}
}

func TestClassWeightsBalanced(t *testing.T) {
	// 3 zeros, 1 one: w0 = 4/6, w1 = 4/2.
	y := []int{0, 0, 0, 1}
	w, err := ClassWeights(y, "balanced")
	if err != nil {
		t.Fatalf("ClassWeights: %v", err)
	}
	if math.Abs(w[0]-4.0/6.0) > 1e-12 || math.Abs(w[3]-2.0) > 1e-12 {
		t.Errorf("weights = %v", w)
	}
	// Balanced weights make both classes contribute equally.
	var s0, s1 float64
	for i, label := range y {
		if label == 1 {
			s1 += w[i]
		} else {
			s0 += w[i]
		}
	}
	if math.Abs(s0-s1) > 1e-9 {
		t.Errorf("class weight sums differ: %v vs %v", s0, s1)
	}
}

func TestClassWeightsSingleClass(t *testing.T) {
	w, err := ClassWeights([]int{1, 1}, "balanced")
	if err != nil {
		t.Fatalf("ClassWeights: %v", err)
	}
	for _, v := range w {
		if v != 1 {
			t.Errorf("single-class weights should fall back to uniform, got %v", w)
		}
	}
}

func TestClassWeightsUnknownMode(t *testing.T) {
	if _, err := ClassWeights([]int{0, 1}, "bogus"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}

func TestPredictAll(t *testing.T) {
	c := constClassifier{p: 0.7}
	x := [][]float64{{1}, {2}, {3}}
	preds := PredictAll(c, x)
	if len(preds) != 3 {
		t.Fatalf("len=%d, want 3", len(preds))
	}
	for _, p := range preds {
		if p != 1 {
			t.Errorf("pred = %d, want 1", p)
		}
	}
	probs := PredictProbaAll(c, x)
	for _, p := range probs {
		if p != 0.7 {
			t.Errorf("proba = %v, want 0.7", p)
		}
	}
}
