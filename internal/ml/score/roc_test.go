package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCPerfectClassifier(t *testing.T) {
	probs := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []int{1, 1, 0, 0}
	auc, err := AUC(probs, truth)
	if err != nil {
		t.Fatalf("AUC: %v", err)
	}
	if math.Abs(auc-1) > 1e-9 {
		t.Errorf("perfect AUC = %v, want 1", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []int{1, 1, 0, 0}
	auc, err := AUC(probs, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0) > 1e-9 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCChanceLevel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 5000
	probs := make([]float64, n)
	truth := make([]int, n)
	for i := range probs {
		probs[i] = r.Float64()
		truth[i] = r.Intn(2)
	}
	auc, err := AUC(probs, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCValidation(t *testing.T) {
	if _, err := ROC([]float64{1}, []int{1, 0}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := ROC(nil, nil); err == nil {
		t.Error("expected empty-input error")
	}
	if _, err := ROC([]float64{0.5, 0.6}, []int{1, 1}); err == nil {
		t.Error("expected single-class error")
	}
}

func TestROCMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		probs := make([]float64, n)
		truth := make([]int, n)
		truth[0], truth[1] = 0, 1 // guarantee both classes
		for i := range probs {
			probs[i] = r.Float64()
			if i > 1 {
				truth[i] = r.Intn(2)
			}
		}
		curve, err := ROC(probs, truth)
		if err != nil {
			return false
		}
		prevT, prevF := 0.0, 0.0
		for _, p := range curve {
			if p.TPR < prevT-1e-12 || p.FPR < prevF-1e-12 {
				return false // rates must be non-decreasing
			}
			if p.TPR < 0 || p.TPR > 1 || p.FPR < 0 || p.FPR > 1 {
				return false
			}
			prevT, prevF = p.TPR, p.FPR
		}
		// The curve must end at (1, 1).
		last := curve[len(curve)-1]
		return math.Abs(last.TPR-1) < 1e-9 && math.Abs(last.FPR-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBestF1Threshold(t *testing.T) {
	// Scores cleanly separate at 0.55.
	probs := []float64{0.9, 0.8, 0.7, 0.6, 0.4, 0.3, 0.2, 0.1}
	truth := []int{1, 1, 1, 1, 0, 0, 0, 0}
	thr, conf, err := BestF1Threshold(probs, truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if conf.F1() != 1 {
		t.Errorf("best F1 = %v, want 1", conf.F1())
	}
	if thr < 0.4 || thr > 0.61 {
		t.Errorf("threshold %v outside the separating band", thr)
	}
}

func TestBestF1ThresholdLagged(t *testing.T) {
	// An early high score just before a saturation episode is rescued by
	// the lag, allowing a lower (more sensitive) threshold to win.
	probs := []float64{0.1, 0.7, 0.9, 0.2}
	truth := []int{0, 0, 1, 0}
	_, conf, err := BestF1Threshold(probs, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if conf.F1() != 1 {
		t.Errorf("lagged best F1 = %v, want 1 (early warning forgiven)", conf.F1())
	}
}

func TestBestF1ThresholdValidation(t *testing.T) {
	if _, _, err := BestF1Threshold(nil, nil, 0); err == nil {
		t.Error("expected empty-input error")
	}
}
