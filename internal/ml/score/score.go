// Package score implements the evaluation metrics of the paper: the plain
// confusion matrix with accuracy and F1 (Sørensen-Dice), and the *lagged*
// variants TPₖ/TNₖ/FPₖ/FNₖ, F1ₖ and Accₖ defined in §4 to cope with the
// monitoring delay between platform metrics and the ground-truth KPI.
package score

import "fmt"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Count tallies prediction/truth pairs (both 0/1 series of equal length).
func Count(pred, truth []int) (Confusion, error) {
	if len(pred) != len(truth) {
		return Confusion{}, fmt.Errorf("score: %d predictions vs %d labels", len(pred), len(truth))
	}
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] == 1 && truth[i] == 1:
			c.TP++
		case pred[i] == 0 && truth[i] == 0:
			c.TN++
		case pred[i] == 1 && truth[i] == 0:
			c.FP++
		default:
			c.FN++
		}
	}
	return c, nil
}

// CountLagged tallies the paper's lagged confusion counts with lag k:
//
//   - a false positive at time t whose ground truth turns saturated within
//     (t, t+k] is re-classified as a true negative TNₖ (the early warning
//     was correct, just ahead of the sluggish KPI);
//   - a false negative at time t preceded by a positive prediction within
//     [t−k, t) is re-classified as a true positive TPₖ;
//   - late predictions (after saturation was already observed) stay wrong.
//
// The paper evaluates with k=2 because its peak response times are bounded
// by the 3-second load-generator timeout.
func CountLagged(pred, truth []int, k int) (Confusion, error) {
	if len(pred) != len(truth) {
		return Confusion{}, fmt.Errorf("score: %d predictions vs %d labels", len(pred), len(truth))
	}
	if k < 0 {
		return Confusion{}, fmt.Errorf("score: negative lag %d", k)
	}
	var c Confusion
	for t := range pred {
		switch {
		case pred[t] == 1 && truth[t] == 1:
			c.TP++
		case pred[t] == 0 && truth[t] == 0:
			c.TN++
		case pred[t] == 1 && truth[t] == 0:
			// FP unless a ground-truth saturation follows within k samples.
			reclassified := false
			for dt := 1; dt <= k && t+dt < len(truth); dt++ {
				if truth[t+dt] == 1 {
					reclassified = true
					break
				}
			}
			if reclassified {
				c.TN++
			} else {
				c.FP++
			}
		default: // pred 0, truth 1
			// FN unless a positive prediction preceded within k samples.
			reclassified := false
			for dt := 1; dt <= k && t-dt >= 0; dt++ {
				if pred[t-dt] == 1 {
					reclassified = true
					break
				}
			}
			if reclassified {
				c.TP++
			} else {
				c.FN++
			}
		}
	}
	return c, nil
}

// Total returns the number of counted samples.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// F1 returns the Sørensen-Dice coefficient 2TP/(2TP+FP+FN).
// By convention it is 0 when the denominator is 0.
func (c Confusion) F1() float64 {
	den := 2*c.TP + c.FP + c.FN
	if den == 0 {
		return 0
	}
	return 2 * float64(c.TP) / float64(den)
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// String renders the matrix like the paper's table rows.
func (c Confusion) String() string {
	return fmt.Sprintf("TN=%d FP=%d FN=%d TP=%d F1=%.3f Acc=%.3f",
		c.TN, c.FP, c.FN, c.TP, c.F1(), c.Accuracy())
}
