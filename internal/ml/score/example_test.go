package score_test

import (
	"fmt"

	"monitorless/internal/ml/score"
)

// The lagged metric forgives an early warning: the positive prediction at
// t=1 precedes the ground-truth saturation at t=2 by one second, so it is
// re-classified as a true negative and the miss at t=2 as a transferred
// true positive (§4 of the paper).
func ExampleCountLagged() {
	pred := []int{0, 1, 0, 0}
	truth := []int{0, 0, 1, 0}

	plain, _ := score.Count(pred, truth)
	lagged, _ := score.CountLagged(pred, truth, 2)

	fmt.Println("plain: ", plain)
	fmt.Println("lagged:", lagged)
	// Output:
	// plain:  TN=2 FP=1 FN=1 TP=0 F1=0.000 Acc=0.500
	// lagged: TN=3 FP=0 FN=0 TP=1 F1=1.000 Acc=1.000
}
