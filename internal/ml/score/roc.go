package score

import (
	"fmt"
	"sort"
)

// ROCPoint is one operating point of a classifier's ROC curve.
type ROCPoint struct {
	// Threshold is the probability cut producing this point.
	Threshold float64
	// TPR and FPR are the true/false positive rates.
	TPR, FPR float64
}

// ROC computes the ROC curve of probability scores against binary truth,
// sorted from the most conservative threshold to the most liberal. It
// underlies the paper's §4 discussion of the FP/FN asymmetry: the
// monitorless threshold of 0.4 trades a few extra FPs for near-zero FNs.
func ROC(probs []float64, truth []int) ([]ROCPoint, error) {
	if len(probs) != len(truth) {
		return nil, fmt.Errorf("score: %d scores vs %d labels", len(probs), len(truth))
	}
	if len(probs) == 0 {
		return nil, fmt.Errorf("score: empty input")
	}
	var pos, neg int
	for _, y := range truth {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("score: ROC needs both classes (pos=%d neg=%d)", pos, neg)
	}

	type pair struct {
		p float64
		y int
	}
	pairs := make([]pair, len(probs))
	for i := range probs {
		pairs[i] = pair{probs[i], truth[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].p > pairs[j].p })

	var out []ROCPoint
	tp, fp := 0, 0
	i := 0
	for i < len(pairs) {
		thr := pairs[i].p
		// Consume all samples tied at this threshold.
		for i < len(pairs) && pairs[i].p == thr {
			if pairs[i].y == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{
			Threshold: thr,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return out, nil
}

// AUC integrates the ROC curve with the trapezoid rule; 0.5 is chance,
// 1.0 a perfect ranking.
func AUC(probs []float64, truth []int) (float64, error) {
	curve, err := ROC(probs, truth)
	if err != nil {
		return 0, err
	}
	auc := 0.0
	prevFPR, prevTPR := 0.0, 0.0
	for _, p := range curve {
		auc += (p.FPR - prevFPR) * (p.TPR + prevTPR) / 2
		prevFPR, prevTPR = p.FPR, p.TPR
	}
	return auc, nil
}

// BestF1Threshold sweeps the score thresholds and returns the one
// maximizing the (lagged) F1 — the generic version of the a-posteriori
// tuning the paper grants its baselines.
func BestF1Threshold(probs []float64, truth []int, lag int) (float64, Confusion, error) {
	if len(probs) != len(truth) || len(probs) == 0 {
		return 0, Confusion{}, fmt.Errorf("score: %d scores vs %d labels", len(probs), len(truth))
	}
	candidates := append([]float64(nil), probs...)
	sort.Float64s(candidates)
	bestF1 := -1.0
	bestThr := 0.5
	var bestConf Confusion
	pred := make([]int, len(probs))
	for _, thr := range candidates {
		for i, p := range probs {
			if p >= thr {
				pred[i] = 1
			} else {
				pred[i] = 0
			}
		}
		c, err := CountLagged(pred, truth, lag)
		if err != nil {
			return 0, Confusion{}, err
		}
		if f := c.F1(); f > bestF1 {
			bestF1 = f
			bestThr = thr
			bestConf = c
		}
	}
	return bestThr, bestConf, nil
}
