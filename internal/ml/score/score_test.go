package score

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountBasic(t *testing.T) {
	pred := []int{1, 0, 1, 0, 1}
	truth := []int{1, 0, 0, 1, 1}
	c, err := Count(pred, truth)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	want := Confusion{TP: 2, TN: 1, FP: 1, FN: 1}
	if c != want {
		t.Errorf("got %+v, want %+v", c, want)
	}
}

func TestCountLengthMismatch(t *testing.T) {
	if _, err := Count([]int{1}, []int{1, 0}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := CountLagged([]int{1}, []int{1, 0}, 2); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestCountLaggedNegativeK(t *testing.T) {
	if _, err := CountLagged([]int{1}, []int{1}, -1); err == nil {
		t.Error("expected negative-lag error")
	}
}

func TestCountLaggedZeroEqualsPlain(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = r.Intn(2)
			truth[i] = r.Intn(2)
		}
		a, err1 := Count(pred, truth)
		b, err2 := CountLagged(pred, truth, 0)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountLaggedEarlyPositiveForgiven(t *testing.T) {
	// Prediction fires one second before the ground truth goes saturated:
	// the paper re-classifies the would-be FP as TN₂.
	pred := []int{0, 1, 1, 0}
	truth := []int{0, 0, 1, 0}
	c, err := CountLagged(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FP != 0 {
		t.Errorf("FP = %d, want 0 (early warning forgiven)", c.FP)
	}
	if c.TN != 3 { // t=0 and t=3 plain TN, t=1 reclassified TN
		t.Errorf("TN = %d, want 3", c.TN)
	}
	if c.TP != 1 {
		t.Errorf("TP = %d, want 1", c.TP)
	}
}

func TestCountLaggedMissForgivenAfterEarlyWarning(t *testing.T) {
	// The classifier warned at t=1, truth goes saturated at t=2 and the
	// classifier has already dropped: the FN at t=2 becomes TP₂.
	pred := []int{0, 1, 0, 0}
	truth := []int{0, 0, 1, 0}
	c, err := CountLagged(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FN != 0 {
		t.Errorf("FN = %d, want 0", c.FN)
	}
	if c.TP != 1 {
		t.Errorf("TP = %d, want 1 (transferred early warning)", c.TP)
	}
}

func TestCountLaggedLatePredictionStillWrong(t *testing.T) {
	// Prediction only fires *after* saturation was observed: stays wrong.
	pred := []int{0, 0, 0, 1}
	truth := []int{0, 1, 0, 0}
	c, err := CountLagged(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FN != 1 {
		t.Errorf("FN = %d, want 1 (late prediction is not forgiven)", c.FN)
	}
	if c.FP != 1 {
		t.Errorf("FP = %d, want 1 (no upcoming saturation within k)", c.FP)
	}
}

func TestCountLaggedBeyondWindowNotForgiven(t *testing.T) {
	// Early warning 3 samples ahead with k=2: too early, stays FP.
	pred := []int{1, 0, 0, 0}
	truth := []int{0, 0, 0, 1}
	c, err := CountLagged(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FP != 1 {
		t.Errorf("FP = %d, want 1 (warning outside the k-window)", c.FP)
	}
}

func TestConfusionTotalsPreserved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = r.Intn(2)
			truth[i] = r.Intn(2)
		}
		k := r.Intn(4)
		c, err := CountLagged(pred, truth, k)
		return err == nil && c.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: lagging can only improve (or preserve) accuracy and F1.
func TestLaggedNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(150)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = r.Intn(2)
			truth[i] = r.Intn(2)
		}
		plain, err1 := Count(pred, truth)
		lag, err2 := CountLagged(pred, truth, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		return lag.Accuracy() >= plain.Accuracy()-1e-12 && lag.F1() >= plain.F1()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsFormulas(t *testing.T) {
	c := Confusion{TP: 8, TN: 5, FP: 2, FN: 1}
	if got, want := c.Accuracy(), 13.0/16.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Accuracy = %v, want %v", got, want)
	}
	if got, want := c.F1(), 16.0/19.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, want)
	}
	if got, want := c.Precision(), 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("Precision = %v, want %v", got, want)
	}
	if got, want := c.Recall(), 8.0/9.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Recall = %v, want %v", got, want)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.F1() != 0 || c.Precision() != 0 || c.Recall() != 0 {
		t.Error("zero matrix should yield zero metrics, not NaN")
	}
}

func TestMajorityPredictorF1(t *testing.T) {
	// The paper's Table 3 footnote: predicting all-saturated on a 75%-
	// saturated validation set scores F1 = 0.857.
	n := 1000
	pred := make([]int, n)
	truth := make([]int, n)
	for i := range pred {
		pred[i] = 1
		if i < 750 {
			truth[i] = 1
		}
	}
	c, err := Count(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.F1()-0.857) > 0.001 {
		t.Errorf("majority-label F1 = %v, want ~0.857 (paper's footnote)", c.F1())
	}
}

func TestConfusionString(t *testing.T) {
	s := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}.String()
	for _, frag := range []string{"TN=2", "FP=3", "FN=4", "TP=1", "F1=", "Acc="} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
