package linear

import (
	"math"
	"math/rand"
	"testing"
)

// separable generates a linearly separable problem with margin.
func separable(n, d int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		score := row[0] - 0.5*row[1%d]
		if score > 0.2 {
			y[i] = 1
		} else if score < -0.2 {
			y[i] = 0
		} else {
			i-- // resample inside the margin
			continue
		}
	}
	return x, y
}

func accOf(predict func([]float64) int, x [][]float64, y []int) float64 {
	c := 0
	for i := range x {
		if predict(x[i]) == y[i] {
			c++
		}
	}
	return float64(c) / float64(len(x))
}

func TestLogRegSeparable(t *testing.T) {
	x, y := separable(500, 4, 1)
	m := NewLogReg(LogRegConfig{C: 1, MaxEpochs: 50, Seed: 1})
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accOf(m.Predict, x, y); acc < 0.95 {
		t.Errorf("accuracy %v, want >= 0.95 on separable data", acc)
	}
}

func TestLogRegProbabilitiesCalibratedDirection(t *testing.T) {
	x, y := separable(500, 2, 2)
	m := NewLogReg(LogRegConfig{C: 1, MaxEpochs: 50, Seed: 2})
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	pFar := m.PredictProba([]float64{5, 0})
	pNear := m.PredictProba([]float64{0.3, 0})
	pNeg := m.PredictProba([]float64{-5, 0})
	if !(pFar > pNear && pNear > pNeg) {
		t.Errorf("probabilities not monotone along the signal axis: %v %v %v", pFar, pNear, pNeg)
	}
	if pFar < 0.9 || pNeg > 0.1 {
		t.Errorf("extreme points not confident: %v, %v", pFar, pNeg)
	}
}

func TestLogRegBalancedWeights(t *testing.T) {
	// Imbalanced overlapping data: balanced mode should raise recall on
	// the minority class.
	r := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	for i := 0; i < 900; i++ {
		x = append(x, []float64{r.NormFloat64() - 0.3})
		y = append(y, 0)
	}
	for i := 0; i < 100; i++ {
		x = append(x, []float64{r.NormFloat64() + 0.3})
		y = append(y, 1)
	}
	plain := NewLogReg(LogRegConfig{MaxEpochs: 40, Seed: 3})
	bal := NewLogReg(LogRegConfig{MaxEpochs: 40, Seed: 3, ClassWeight: "balanced"})
	if err := plain.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := bal.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	recall := func(m *LogReg) float64 {
		tp, fn := 0, 0
		for i := range x {
			if y[i] == 1 {
				if m.Predict(x[i]) == 1 {
					tp++
				} else {
					fn++
				}
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	if recall(bal) <= recall(plain) {
		t.Errorf("balanced recall %v not above plain recall %v", recall(bal), recall(plain))
	}
}

func TestLogRegValidation(t *testing.T) {
	m := NewLogReg(LogRegConfig{})
	if err := m.Fit(nil, nil); err == nil {
		t.Error("expected error on empty input")
	}
	if err := m.Fit([][]float64{{1}}, []int{3}); err == nil {
		t.Error("expected error on non-binary label")
	}
	if err := m.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("expected error on length mismatch")
	}
	m2 := NewLogReg(LogRegConfig{ClassWeight: "wat"})
	if err := m2.Fit([][]float64{{1}, {2}}, []int{0, 1}); err == nil {
		t.Error("expected error for bad class weight")
	}
}

func TestLogRegUnfitted(t *testing.T) {
	m := NewLogReg(LogRegConfig{})
	if p := m.PredictProba([]float64{1}); p != 0.5 {
		t.Errorf("unfitted proba %v, want 0.5", p)
	}
}

func TestSVCSeparable(t *testing.T) {
	x, y := separable(500, 4, 4)
	m := NewSVC(SVCConfig{C: 10, MaxEpochs: 40, Seed: 4})
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accOf(m.Predict, x, y); acc < 0.93 {
		t.Errorf("accuracy %v, want >= 0.93 on separable data", acc)
	}
}

func TestSVCL1Sparsity(t *testing.T) {
	// With many irrelevant features, L1 should zero out more weights
	// than L2.
	r := rand.New(rand.NewSource(5))
	n, d := 400, 20
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		if row[0] > 0 {
			y[i] = 1
		}
	}
	l1 := NewSVC(SVCConfig{C: 0.5, Penalty: L1, MaxEpochs: 30, Seed: 5})
	l2 := NewSVC(SVCConfig{C: 0.5, Penalty: L2, MaxEpochs: 30, Seed: 5})
	if err := l1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := l2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// L1 concentrates weight mass on the signal feature: the irrelevant
	// coordinates carry relatively less mass than under L2.
	relNoise := func(w []float64) float64 {
		signal := math.Abs(w[0])
		noise := 0.0
		for _, v := range w[1:] {
			noise += math.Abs(v)
		}
		if signal == 0 {
			return math.Inf(1)
		}
		return noise / signal
	}
	r1, r2 := relNoise(l1.Coefficients()), relNoise(l2.Coefficients())
	if r1 >= r2 {
		t.Errorf("L1 relative noise mass %v not below L2's %v", r1, r2)
	}
}

func TestSVCDecisionSign(t *testing.T) {
	x, y := separable(300, 2, 6)
	m := NewSVC(SVCConfig{C: 10, MaxEpochs: 40, Seed: 6})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		dec := m.Decision(x[i])
		pred := m.Predict(x[i])
		if (dec >= 0) != (pred == 1) {
			t.Fatal("Predict disagrees with Decision sign")
		}
		p := m.PredictProba(x[i])
		if (p >= 0.5) != (dec >= 0) {
			t.Fatal("PredictProba disagrees with Decision sign")
		}
	}
}

func TestSVCUnfitted(t *testing.T) {
	m := NewSVC(SVCConfig{})
	if m.Predict([]float64{1}) != 0 {
		t.Error("unfitted SVC should predict 0")
	}
	if p := m.PredictProba([]float64{1}); p != 0.5 {
		t.Errorf("unfitted proba %v, want 0.5", p)
	}
}

func TestSVCValidation(t *testing.T) {
	m := NewSVC(SVCConfig{})
	if err := m.Fit(nil, nil); err == nil {
		t.Error("expected error on empty input")
	}
	m2 := NewSVC(SVCConfig{ClassWeight: "wat"})
	if err := m2.Fit([][]float64{{1}, {2}}, []int{0, 1}); err == nil {
		t.Error("expected error for bad class weight")
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v, want 0.5", s)
	}
	if s := sigmoid(100); s <= 0.999 {
		t.Errorf("sigmoid(100) = %v, want ~1", s)
	}
	if s := sigmoid(-100); s >= 0.001 {
		t.Errorf("sigmoid(-100) = %v, want ~0", s)
	}
	// Symmetric: σ(−z) = 1 − σ(z).
	for _, z := range []float64{0.1, 1, 3, 10} {
		if math.Abs(sigmoid(-z)-(1-sigmoid(z))) > 1e-12 {
			t.Errorf("sigmoid not symmetric at %v", z)
		}
	}
}
