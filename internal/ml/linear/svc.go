package linear

import (
	"fmt"
	"math"
	"math/rand"

	"monitorless/internal/ml"
)

// Penalty selects the SVC regularizer.
type Penalty int

const (
	// L2 is the standard squared-norm penalty.
	L2 Penalty = iota
	// L1 produces sparse weights (the paper's grid selected l1).
	L1
)

// SVCConfig mirrors LinearSVC(C, tol, penalty, class_weight) from the
// paper's Table 2 grid. The paper uses a linear kernel only.
type SVCConfig struct {
	// C is the inverse regularization strength (paper: 10).
	C float64
	// Tol is the stopping tolerance (paper: 0.01).
	Tol float64
	// Penalty is L1 or L2 (paper: l1).
	Penalty Penalty
	// ClassWeight is "" or "balanced".
	ClassWeight string
	// MaxEpochs bounds training passes (default 60).
	MaxEpochs int
	// Seed seeds the sampling order.
	Seed int64
}

// SVC is a linear support vector classifier trained by stochastic
// subgradient descent on the hinge loss (Pegasos-style schedule), with
// optional L1 truncated-gradient regularization.
type SVC struct {
	cfg  SVCConfig
	w    []float64
	bias float64
}

var _ ml.Classifier = (*SVC)(nil)

// NewSVC returns an unfitted linear SVC.
func NewSVC(cfg SVCConfig) *SVC {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 60
	}
	return &SVC{cfg: cfg}
}

// Fit trains the SVC. Labels are mapped to ±1 internally.
func (m *SVC) Fit(x [][]float64, y []int) error {
	d, err := ml.ValidateTrainingSet(x, y)
	if err != nil {
		return err
	}
	sw, err := ml.ClassWeights(y, m.cfg.ClassWeight)
	if err != nil {
		return fmt.Errorf("linear: %w", err)
	}

	n := len(x)
	m.w = make([]float64, d)
	m.bias = 0
	lambda := 1 / (m.cfg.C * float64(n))

	rng := rand.New(rand.NewSource(m.cfg.Seed))
	t := 1
	prev := make([]float64, d)
	for epoch := 0; epoch < m.cfg.MaxEpochs; epoch++ {
		copy(prev, m.w)
		for iter := 0; iter < n; iter, t = iter+1, t+1 {
			i := rng.Intn(n)
			// Pegasos schedule with an offset that caps the first step at
			// 1 (the bare 1/(λt) schedule takes wild early steps when λ
			// is small and never recovers sparsity).
			eta := 1 / (lambda * (float64(t) + 1/lambda))
			yi := 2*float64(y[i]) - 1
			row := x[i]
			z := m.bias
			for j, v := range row {
				z += m.w[j] * v
			}
			if yi*z < 1 { // inside the margin: hinge subgradient
				g := eta * sw[i]
				for j, v := range row {
					m.w[j] += g * yi * v
				}
				m.bias += g * yi
			}
			switch m.cfg.Penalty {
			case L1:
				// Truncated-gradient L1 shrinkage (applied after the
				// gradient step so untouched weights decay to exact zero).
				shrink := eta * lambda
				for j := range m.w {
					if m.w[j] > shrink {
						m.w[j] -= shrink
					} else if m.w[j] < -shrink {
						m.w[j] += shrink
					} else {
						m.w[j] = 0
					}
				}
			default:
				f := 1 - eta*lambda
				if f < 0 {
					f = 0
				}
				for j := range m.w {
					m.w[j] *= f
				}
			}
		}
		diff := 0.0
		for j := range m.w {
			diff = math.Max(diff, math.Abs(m.w[j]-prev[j]))
		}
		if diff < m.cfg.Tol {
			break
		}
	}
	return nil
}

// Decision returns the signed margin w·x + b.
func (m *SVC) Decision(x []float64) float64 {
	z := m.bias
	for j, v := range x {
		z += m.w[j] * v
	}
	return z
}

// PredictProba squashes the margin through a logistic link. LinearSVC has
// no calibrated probabilities; this mirrors the common decision→sigmoid
// approximation and is only used for ranking.
func (m *SVC) PredictProba(x []float64) float64 {
	if m.w == nil {
		return 0.5
	}
	return sigmoid(m.Decision(x))
}

// Predict returns 1 for a positive margin.
func (m *SVC) Predict(x []float64) int {
	if m.w == nil {
		return 0
	}
	if m.Decision(x) >= 0 {
		return 1
	}
	return 0
}

// Coefficients returns a copy of the weight vector (without bias).
func (m *SVC) Coefficients() []float64 {
	out := make([]float64, len(m.w))
	copy(out, m.w)
	return out
}
