// Package linear implements the two linear baselines of the paper's
// Table 3: binary logistic regression trained with the stochastic average
// gradient (SAG) solver (Schmidt et al. 2017), and a linear support vector
// classifier in the spirit of LIBLINEAR (hinge loss with L1/L2 penalty).
package linear

import (
	"fmt"
	"math"
	"math/rand"

	"monitorless/internal/ml"
)

// LogRegConfig mirrors scikit-learn's LogisticRegression(C, tol,
// class_weight, solver="sag") — the axes of the paper's Table 2 grid.
type LogRegConfig struct {
	// C is the inverse regularization strength (L2 penalty = 1/C).
	C float64
	// Tol is the stopping tolerance on the weight update norm.
	Tol float64
	// ClassWeight is "" or "balanced".
	ClassWeight string
	// MaxEpochs bounds the SAG passes (default 100).
	MaxEpochs int
	// Seed seeds the sampling order.
	Seed int64
}

// LogReg is a fitted binary logistic regression model.
type LogReg struct {
	cfg  LogRegConfig
	w    []float64
	bias float64
}

var _ ml.Classifier = (*LogReg)(nil)

// NewLogReg returns an unfitted logistic regression.
func NewLogReg(cfg LogRegConfig) *LogReg {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 100
	}
	return &LogReg{cfg: cfg}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains with SAG: it keeps a memory of the last gradient scalar per
// sample and steps along the running average of all stored gradients.
func (m *LogReg) Fit(x [][]float64, y []int) error {
	d, err := ml.ValidateTrainingSet(x, y)
	if err != nil {
		return err
	}
	sw, err := ml.ClassWeights(y, m.cfg.ClassWeight)
	if err != nil {
		return fmt.Errorf("linear: %w", err)
	}

	n := len(x)
	m.w = make([]float64, d)
	m.bias = 0

	// Per-sample stored gradient scalar g_i = w_i·(σ(z_i) − y_i); full
	// gradient for sample i is g_i·x_i.
	grad := make([]float64, n)
	sumGrad := make([]float64, d) // Σ_i g_i·x_i
	sumGradBias := 0.0
	seen := 0
	visited := make([]bool, n)

	// Lipschitz-derived step size: L = 0.25·max‖x‖² + λ.
	lambda := 1 / (m.cfg.C * float64(n))
	maxNorm := 0.0
	for _, row := range x {
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		if s > maxNorm {
			maxNorm = s
		}
	}
	step := 1 / (0.25*maxNorm + lambda + 1e-12)

	rng := rand.New(rand.NewSource(m.cfg.Seed))
	for epoch := 0; epoch < m.cfg.MaxEpochs; epoch++ {
		maxUpdate := 0.0
		for iter := 0; iter < n; iter++ {
			i := rng.Intn(n)
			if !visited[i] {
				visited[i] = true
				seen++
			}
			row := x[i]
			z := m.bias
			for j, v := range row {
				z += m.w[j] * v
			}
			gNew := sw[i] * (sigmoid(z) - float64(y[i]))
			delta := gNew - grad[i]
			grad[i] = gNew
			for j, v := range row {
				sumGrad[j] += delta * v
			}
			sumGradBias += delta

			inv := 1 / float64(seen)
			for j := range m.w {
				upd := step * (sumGrad[j]*inv + lambda*m.w[j])
				m.w[j] -= upd
				if a := math.Abs(upd); a > maxUpdate {
					maxUpdate = a
				}
			}
			m.bias -= step * sumGradBias * inv
		}
		if maxUpdate < m.cfg.Tol {
			break
		}
	}
	return nil
}

// PredictProba returns σ(w·x + b).
func (m *LogReg) PredictProba(x []float64) float64 {
	if m.w == nil {
		return 0.5
	}
	z := m.bias
	for j, v := range x {
		z += m.w[j] * v
	}
	return sigmoid(z)
}

// Predict thresholds the probability at 0.5.
func (m *LogReg) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Coefficients returns a copy of the weight vector (without bias).
func (m *LogReg) Coefficients() []float64 {
	out := make([]float64, len(m.w))
	copy(out, m.w)
	return out
}
