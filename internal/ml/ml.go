// Package ml defines the shared contract between the from-scratch learners
// (tree, forest, linear, boost, nn) and their consumers (feature pipeline,
// cross-validation, the monitorless core). Everything is stdlib-only.
package ml

import (
	"errors"
	"fmt"
)

// Classifier is a binary classifier over dense float feature vectors.
// Labels are 0 (not saturated) and 1 (saturated).
type Classifier interface {
	// Fit trains the classifier. Implementations must not retain x or y.
	Fit(x [][]float64, y []int) error
	// PredictProba returns the estimated probability of class 1.
	PredictProba(x []float64) float64
	// Predict returns the predicted class label.
	Predict(x []float64) int
}

// WeightedFitter is implemented by classifiers that accept per-sample
// weights (used by AdaBoost and by balanced class weighting).
type WeightedFitter interface {
	FitWeighted(x [][]float64, y []int, w []float64) error
}

// FeatureImporter is implemented by models that expose per-feature
// importances (the random forest filter step and Table 4 rely on it).
type FeatureImporter interface {
	// FeatureImportances returns one non-negative weight per input
	// feature, summing to 1 (or all zeros for a degenerate fit).
	FeatureImportances() []float64
}

// ErrNotFitted is returned by predictions on an untrained model.
var ErrNotFitted = errors.New("ml: model is not fitted")

// ErrNoData is returned when Fit receives an empty training set.
var ErrNoData = errors.New("ml: empty training set")

// ValidateTrainingSet checks the common preconditions shared by all
// learners and returns the feature dimensionality.
func ValidateTrainingSet(x [][]float64, y []int) (int, error) {
	if len(x) == 0 {
		return 0, ErrNoData
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d samples but %d labels", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return 0, errors.New("ml: samples have zero features")
	}
	for i, row := range x {
		if len(row) != d {
			return 0, fmt.Errorf("ml: ragged training set: sample %d has %d features, want %d", i, len(row), d)
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return 0, fmt.Errorf("ml: label %d at sample %d is not binary", label, i)
		}
	}
	return d, nil
}

// PredictAll applies c.Predict to every row.
func PredictAll(c Classifier, x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = c.Predict(row)
	}
	return out
}

// PredictProbaAll applies c.PredictProba to every row.
func PredictProbaAll(c Classifier, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = c.PredictProba(row)
	}
	return out
}

// ClassWeights computes per-sample weights. mode is one of:
//   - "": uniform weights,
//   - "balanced": n/(2·n_class) as in scikit-learn,
//
// matching the class_weight axis of the paper's Table 2 grids.
func ClassWeights(y []int, mode string) ([]float64, error) {
	w := make([]float64, len(y))
	switch mode {
	case "", "none", "None":
		for i := range w {
			w[i] = 1
		}
	case "balanced", "subsample":
		// "subsample" differs from "balanced" only inside the forest's
		// bootstrap loop; at the dataset level both start balanced.
		var n1 int
		for _, label := range y {
			n1 += label
		}
		n0 := len(y) - n1
		if n0 == 0 || n1 == 0 {
			for i := range w {
				w[i] = 1
			}
			return w, nil
		}
		w0 := float64(len(y)) / (2 * float64(n0))
		w1 := float64(len(y)) / (2 * float64(n1))
		for i, label := range y {
			if label == 1 {
				w[i] = w1
			} else {
				w[i] = w0
			}
		}
	default:
		return nil, fmt.Errorf("ml: unknown class weight mode %q", mode)
	}
	return w, nil
}
