// Package ml defines the shared contract between the from-scratch learners
// (tree, forest, linear, boost, nn) and their consumers (feature pipeline,
// cross-validation, the monitorless core). Everything is stdlib-only.
//
// Training data enters through one of two doors: the columnar frame path
// (FrameFitter, the native representation) or the legacy row-oriented
// [][]float64 path, which is a thin adapter that transposes once and then
// runs the same columnar fit. Data hygiene — NaN/Inf rejection, label and
// shape checks — happens exactly once at whichever door the data enters
// (ValidateTrainingSet or ValidateFrame); internal refits (bootstrap
// resamples, boosting rounds) never re-scan.
package ml

import (
	"errors"
	"fmt"
	"math"

	"monitorless/internal/frame"
)

// Classifier is a binary classifier over dense float feature vectors.
// Labels are 0 (not saturated) and 1 (saturated). Training data must be
// finite: Fit rejects NaN and ±Inf values at the boundary (via
// ValidateTrainingSet), so individual learners never handle non-finite
// values ad hoc.
type Classifier interface {
	// Fit trains the classifier. Implementations must not retain x or y,
	// and must reject non-finite feature values.
	Fit(x [][]float64, y []int) error
	// PredictProba returns the estimated probability of class 1.
	PredictProba(x []float64) float64
	// Predict returns the predicted class label.
	Predict(x []float64) int
}

// FrameFitter is implemented by classifiers with a frame-native fit path.
// It is the preferred training door: no per-row gathering, and fold/run
// subsets are index views instead of copied matrices.
type FrameFitter interface {
	// FitFrame trains on the frame rows listed in rows (nil = all rows).
	// y holds one label per frame row; nil means fr.Labels().
	// Implementations must treat fr as read-only, must not retain fr, y
	// or rows, and must reject non-finite values once (ValidateFrame).
	FitFrame(fr *frame.Frame, y []int, rows []int) error
}

// WeightedFitter is implemented by classifiers that accept per-sample
// weights (used by AdaBoost and by balanced class weighting).
type WeightedFitter interface {
	FitWeighted(x [][]float64, y []int, w []float64) error
}

// FrameProber is implemented by classifiers with a batch frame-native
// probability path (the flattened forest): all listed rows are scored in
// one pass without per-row feature gathering, bit-identical to calling
// PredictProba row by row.
type FrameProber interface {
	// PredictProbaFrameRows returns P(class 1) for every listed frame
	// row (rows nil = all rows), in rows order.
	PredictProbaFrameRows(fr *frame.Frame, rows []int) []float64
}

// FramePredictor is the class-label counterpart of FrameProber.
type FramePredictor interface {
	// PredictFrameRows returns the predicted class of every listed frame
	// row (rows nil = all rows), in rows order.
	PredictFrameRows(fr *frame.Frame, rows []int) []int
}

// FeatureImporter is implemented by models that expose per-feature
// importances (the random forest filter step and Table 4 rely on it).
type FeatureImporter interface {
	// FeatureImportances returns one non-negative weight per input
	// feature, summing to 1 (or all zeros for a degenerate fit).
	FeatureImportances() []float64
}

// ErrNotFitted is returned by predictions on an untrained model.
var ErrNotFitted = errors.New("ml: model is not fitted")

// ErrNoData is returned when Fit receives an empty training set.
var ErrNoData = errors.New("ml: empty training set")

// ValidateTrainingSet checks the common preconditions shared by all
// learners — shape, binary labels, and finiteness (NaN/Inf rejection) —
// and returns the feature dimensionality. It is the single hygiene gate
// of the row-oriented adapter path; the frame path uses ValidateFrame.
func ValidateTrainingSet(x [][]float64, y []int) (int, error) {
	if len(x) == 0 {
		return 0, ErrNoData
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d samples but %d labels", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return 0, errors.New("ml: samples have zero features")
	}
	for i, row := range x {
		if len(row) != d {
			return 0, fmt.Errorf("ml: ragged training set: sample %d has %d features, want %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("ml: non-finite value %v at sample %d, feature %d", v, i, j)
			}
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return 0, fmt.Errorf("ml: label %d at sample %d is not binary", label, i)
		}
	}
	return d, nil
}

// ValidateFrame is the hygiene gate of the frame-native fit path: it
// resolves y (nil means fr.Labels()), checks shape and binary labels for
// the selected rows, and rejects NaN/Inf once via frame.CheckFinite.
// It returns the resolved label vector (one entry per frame row).
func ValidateFrame(fr *frame.Frame, y []int, rows []int) ([]int, error) {
	if fr == nil || fr.Rows() == 0 {
		return nil, ErrNoData
	}
	if fr.NumCols() == 0 {
		return nil, errors.New("ml: frame has zero features")
	}
	if y == nil {
		y = fr.Labels()
	}
	if len(y) != fr.Rows() {
		return nil, fmt.Errorf("ml: %d labels for %d frame rows", len(y), fr.Rows())
	}
	if rows == nil {
		for i, label := range y {
			if label != 0 && label != 1 {
				return nil, fmt.Errorf("ml: label %d at row %d is not binary", label, i)
			}
		}
	} else {
		if len(rows) == 0 {
			return nil, ErrNoData
		}
		for _, i := range rows {
			if i < 0 || i >= fr.Rows() {
				return nil, fmt.Errorf("ml: training row %d out of range (%d rows)", i, fr.Rows())
			}
			if y[i] != 0 && y[i] != 1 {
				return nil, fmt.Errorf("ml: label %d at row %d is not binary", y[i], i)
			}
		}
	}
	if err := fr.CheckFinite(); err != nil {
		return nil, fmt.Errorf("ml: %w", err)
	}
	return y, nil
}

// FrameOf transposes a row-oriented matrix into an anonymous-schema frame.
// It is the adapter used by the legacy [][]float64 Fit entry points: one
// transpose at the boundary, columnar everywhere after.
func FrameOf(x [][]float64) *frame.Frame {
	d := 0
	if len(x) > 0 {
		d = len(x[0])
	}
	fr := frame.NewDense(make(frame.Schema, d), len(x), nil, nil)
	for j := 0; j < d; j++ {
		col := fr.Col(j)
		for i, row := range x {
			col[i] = row[j]
		}
	}
	return fr
}

// FitFrame trains c on the selected frame rows, using the frame-native
// path when c implements FrameFitter and falling back to a one-shot row
// materialization otherwise (linear and neural learners iterate rows by
// design).
func FitFrame(c Classifier, fr *frame.Frame, y []int, rows []int) error {
	if ff, ok := c.(FrameFitter); ok {
		return ff.FitFrame(fr, y, rows)
	}
	if y == nil {
		y = fr.Labels()
	}
	if rows == nil {
		x := fr.MaterializeRows()
		return c.Fit(x, y)
	}
	sub := fr.SelectRows(rows)
	ty := make([]int, len(rows))
	for p, i := range rows {
		ty[p] = y[i]
	}
	return c.Fit(sub.MaterializeRows(), ty)
}

// PredictFrameAll classifies every frame row, via the batch frame path
// when the classifier has one and a per-row gather loop otherwise.
func PredictFrameAll(c Classifier, fr *frame.Frame) []int {
	return PredictFrameRows(c, fr, nil)
}

// PredictFrameRows classifies the listed frame rows (nil = all rows),
// dispatching to the classifier's batch FramePredictor path when
// available and falling back to one reused gather buffer otherwise.
func PredictFrameRows(c Classifier, fr *frame.Frame, rows []int) []int {
	if fp, ok := c.(FramePredictor); ok {
		return fp.PredictFrameRows(fr, rows)
	}
	n := fr.Rows()
	if rows != nil {
		n = len(rows)
	}
	out := make([]int, n)
	buf := make([]float64, fr.NumCols())
	for p := range out {
		i := p
		if rows != nil {
			i = rows[p]
		}
		buf = fr.Row(i, buf)
		out[p] = c.Predict(buf)
	}
	return out
}

// PredictProbaFrameAll returns P(class 1) for every frame row.
func PredictProbaFrameAll(c Classifier, fr *frame.Frame) []float64 {
	return PredictProbaFrameRows(c, fr, nil)
}

// PredictProbaFrameRows returns P(class 1) for the listed frame rows
// (nil = all rows), dispatching to the batch FrameProber path when
// available.
func PredictProbaFrameRows(c Classifier, fr *frame.Frame, rows []int) []float64 {
	if fp, ok := c.(FrameProber); ok {
		return fp.PredictProbaFrameRows(fr, rows)
	}
	n := fr.Rows()
	if rows != nil {
		n = len(rows)
	}
	out := make([]float64, n)
	buf := make([]float64, fr.NumCols())
	for p := range out {
		i := p
		if rows != nil {
			i = rows[p]
		}
		buf = fr.Row(i, buf)
		out[p] = c.PredictProba(buf)
	}
	return out
}

// PredictAll applies c.Predict to every row.
func PredictAll(c Classifier, x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = c.Predict(row)
	}
	return out
}

// PredictProbaAll applies c.PredictProba to every row.
func PredictProbaAll(c Classifier, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = c.PredictProba(row)
	}
	return out
}

// ClassWeights computes per-sample weights. mode is one of:
//   - "": uniform weights,
//   - "balanced": n/(2·n_class) as in scikit-learn,
//
// matching the class_weight axis of the paper's Table 2 grids.
func ClassWeights(y []int, mode string) ([]float64, error) {
	w := make([]float64, len(y))
	switch mode {
	case "", "none", "None":
		for i := range w {
			w[i] = 1
		}
	case "balanced", "subsample":
		// "subsample" differs from "balanced" only inside the forest's
		// bootstrap loop; at the dataset level both start balanced.
		var n1 int
		for _, label := range y {
			n1 += label
		}
		n0 := len(y) - n1
		if n0 == 0 || n1 == 0 {
			for i := range w {
				w[i] = 1
			}
			return w, nil
		}
		w0 := float64(len(y)) / (2 * float64(n0))
		w1 := float64(len(y)) / (2 * float64(n1))
		for i, label := range y {
			if label == 1 {
				w[i] = w1
			} else {
				w[i] = w0
			}
		}
	default:
		return nil, fmt.Errorf("ml: unknown class weight mode %q", mode)
	}
	return w, nil
}
