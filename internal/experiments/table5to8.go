package experiments

import (
	"fmt"

	"monitorless/internal/apps"
	"monitorless/internal/autoscale"
	"monitorless/internal/ml/score"
	"monitorless/internal/parallel"
	"monitorless/internal/workload"
)

// Lag is the paper's evaluation lag k=2 (§4).
const Lag = 2

// EvalRow is one row of Tables 5/6/8.
type EvalRow struct {
	// Name labels the approach ("CPU (97%)", "monitorless", ...).
	Name string
	// CPUThr / MemThr are the a-posteriori optimal thresholds (percent),
	// zero when unused.
	CPUThr, MemThr float64
	// Confusion carries TN₂ FP₂ FN₂ TP₂ and derives F1₂/Acc₂.
	Confusion score.Confusion
}

// EvalTable is one full baselines-vs-monitorless comparison.
type EvalTable struct {
	Title         string
	Rows          []EvalRow
	Samples       int
	SaturatedFrac float64
}

// buildEvalTable scores the four optimally-tuned threshold baselines and
// the monitorless model on one evaluation run.
func buildEvalTable(ctx *Context, title string, data *EvalData) (*EvalTable, map[string][]int, error) {
	table := &EvalTable{
		Title:         title,
		Samples:       data.Samples(),
		SaturatedFrac: data.SaturatedFraction(),
	}
	cpuThr, cpuConf := data.OptimizedBaseline(BaselineCPU, Lag)
	memThr, memConf := data.OptimizedBaseline(BaselineMem, Lag)
	table.Rows = append(table.Rows,
		EvalRow{Name: fmt.Sprintf("CPU (%.0f%%)", cpuThr), CPUThr: cpuThr, Confusion: cpuConf},
		EvalRow{Name: fmt.Sprintf("MEM (%.0f%%)", memThr), MemThr: memThr, Confusion: memConf},
	)
	// The paper's combinations reuse the single-resource optima.
	for _, mode := range []BaselineMode{BaselineCPUOrMem, BaselineCPUAndMem} {
		conf, err := data.CombineBaseline(mode, cpuThr, memThr, Lag)
		if err != nil {
			return nil, nil, err
		}
		table.Rows = append(table.Rows, EvalRow{Name: mode.String(), CPUThr: cpuThr, MemThr: memThr, Confusion: conf})
	}
	pred, perInst, err := data.ModelPredictions(ctx.Model)
	if err != nil {
		return nil, nil, err
	}
	conf, err := score.CountLagged(pred, data.Truth, Lag)
	if err != nil {
		return nil, nil, err
	}
	table.Rows = append(table.Rows, EvalRow{Name: "monitorless", Confusion: conf})
	return table, perInst, nil
}

// ElggLoad is the §4.1 workload: sinnoise1000 scaled to 1/10 intensity.
func ElggLoad(seed int64) workload.Pattern {
	return workload.SineNoise{
		Sine: workload.Sine{Min: 0.5, Max: 100, Period: 600},
		Seed: seed,
	}
}

// CollectElgg runs the §4.1 three-tier evaluation.
func CollectElgg(ctx *Context) (*EvalData, error) {
	return CollectEval(BuildElgg(), ElggLoad(ctx.Scale.Seed+5), CollectOptions{
		MaxRate:     130,
		Duration:    ctx.Scale.ElggDuration,
		RampSeconds: ctx.Scale.RampSeconds,
		Seed:        ctx.Scale.Seed + 51,
	})
}

// Table5 evaluates the three-tier web application (§4.1).
func Table5(ctx *Context, data *EvalData) (*EvalTable, error) {
	t, _, err := buildEvalTable(ctx, "Table 5: three-tier web application (Elgg)", data)
	return t, err
}

// TeaStoreBase is the cloud-trace mean rate used for the §4.2 TeaStore run.
const TeaStoreBase = 135

// SockshopInterferenceRate is the constant Sockshop load applied while
// TeaStore is the measurement target.
const SockshopInterferenceRate = 60

// CollectTeaStore runs the §4.2 multi-tenant TeaStore evaluation.
func CollectTeaStore(ctx *Context) (*EvalData, error) {
	return CollectEval(
		BuildTeaStore(SockshopInterferenceRate, ctx.Scale.Seed+7),
		apps.TeaStoreLoad(TeaStoreBase, ctx.Scale.Seed+9),
		CollectOptions{
			MaxRate:     400,
			Duration:    ctx.Scale.TeaStoreDuration,
			RampSeconds: ctx.Scale.RampSeconds,
			Seed:        ctx.Scale.Seed + 52,
		})
}

// Table6 evaluates TeaStore and returns the per-instance predictions that
// Figure 3 visualizes.
func Table6(ctx *Context, data *EvalData) (*EvalTable, map[string][]int, error) {
	return buildEvalTable(ctx, "Table 6: TeaStore (multi-tenant)", data)
}

// TeaStoreInterferenceRate is the constant TeaStore load applied while
// Sockshop is the measurement target.
const TeaStoreInterferenceRate = 60

// SockshopRatePerUser converts Locust users into requests/s.
const SockshopRatePerUser = 0.27

// CollectSockshop runs the §4.2.3 Sockshop evaluation: three Locust runs,
// recording only their 1000-second windows (the paper's 3×999 samples).
func CollectSockshop(ctx *Context) (*EvalData, error) {
	f := ctx.Scale.SockshopScale
	if f <= 0 {
		f = 1
	}
	scale := func(v int) int { return int(float64(v) * f) }
	starts := []int{scale(1000), scale(3000), scale(5000)}
	hatch, hold := scale(700), scale(300)
	load := workload.NewJittered(workload.Sum{
		workload.LocustHatch{MaxUsers: 700, RatePerUser: SockshopRatePerUser, Start: starts[0], HatchDuration: hatch, HoldDuration: hold},
		workload.LocustHatch{MaxUsers: 700, RatePerUser: SockshopRatePerUser, Start: starts[1], HatchDuration: hatch, HoldDuration: hold},
		workload.LocustHatch{MaxUsers: 700, RatePerUser: SockshopRatePerUser, Start: starts[2], HatchDuration: hatch, HoldDuration: hold},
	}, 0.08, ctx.Scale.Seed+13)
	record := func(t int) bool {
		for _, s := range starts {
			if t >= s && t < s+hatch+hold {
				return true
			}
		}
		return false
	}
	return CollectEval(
		BuildSockshop(TeaStoreInterferenceRate, ctx.Scale.Seed+11),
		load,
		CollectOptions{
			MaxRate:     300,
			Duration:    scale(6000) + 10,
			RampSeconds: ctx.Scale.RampSeconds,
			Record:      record,
			Seed:        ctx.Scale.Seed + 53,
		})
}

// Table8 evaluates Sockshop (§4.2.3).
func Table8(ctx *Context, data *EvalData) (*EvalTable, error) {
	t, _, err := buildEvalTable(ctx, "Table 8: Sockshop (multi-tenant)", data)
	return t, err
}

// Table7Row mirrors the autoscaling comparison rows.
type Table7Row = autoscale.Result

// Table7 runs the §4.2.2 autoscaling study on the TeaStore deployment:
// each policy gets a fresh environment under the same workload; thresholds
// for the baseline scalers come from the Table 6 a-posteriori optimization.
func Table7(ctx *Context, table6 *EvalTable) ([]Table7Row, error) {
	// Extract the optimized thresholds from Table 6.
	var cpuThr, memThr, orCPU, orMem, andCPU, andMem float64
	for _, row := range table6.Rows {
		switch {
		case row.Name == "CPU-OR-MEM":
			orCPU, orMem = row.CPUThr, row.MemThr
		case row.Name == "CPU-AND-MEM":
			andCPU, andMem = row.CPUThr, row.MemThr
		case len(row.Name) >= 3 && row.Name[:3] == "CPU":
			cpuThr = row.CPUThr
		case len(row.Name) >= 3 && row.Name[:3] == "MEM":
			memThr = row.MemThr
		}
	}

	scalers := []struct {
		s         autoscale.Scaler
		withModel bool
	}{
		{&autoscale.ThresholdScaler{Label: fmt.Sprintf("A-posteriori CPU (%.0f%%)", cpuThr), UseCPU: true, CPUThr: cpuThr}, false},
		{&autoscale.ThresholdScaler{Label: fmt.Sprintf("A-posteriori MEM (%.0f%%)", memThr), UseMem: true, MemThr: memThr}, false},
		{&autoscale.ThresholdScaler{Label: "CPU-OR-MEM", UseCPU: true, UseMem: true, CPUThr: orCPU, MemThr: orMem}, false},
		{&autoscale.ThresholdScaler{Label: "CPU-AND-MEM", UseCPU: true, UseMem: true, And: true, CPUThr: andCPU, MemThr: andMem}, false},
		{autoscale.MonitorlessScaler{}, true},
		{autoscale.NoScaling{}, false},
		{&autoscale.RTScaler{SLO: 0.75, Services: []string{"recommender", "auth"}}, false},
	}

	build := func() (*autoscale.Env, error) {
		eng, tea, err := BuildTeaStore(SockshopInterferenceRate, ctx.Scale.Seed+7)(apps.TeaStoreLoad(TeaStoreBase, ctx.Scale.Seed+9))
		if err != nil {
			return nil, err
		}
		return &autoscale.Env{Engine: eng, Target: tea, Cluster: eng.Cluster()}, nil
	}

	opt := autoscale.Options{
		Duration:        ctx.Scale.AutoscaleDuration,
		ReplicaLifespan: 120,
		SLORt:           0.75,
		SLOFailFrac:     0.10,
		Couple:          [][]string{{"recommender", "auth"}},
		Seed:            ctx.Scale.Seed + 54,
	}

	// Each policy simulates its own freshly built environment; the fan-out
	// keeps rows in policy order and shares only the read-only model.
	return parallel.Map(len(scalers), func(i int) (Table7Row, error) {
		sc := scalers[i]
		model := ctx.Model
		if !sc.withModel {
			model = nil
		}
		res, err := autoscale.Simulate(build, sc.s, model, opt)
		if err != nil {
			return Table7Row{}, fmt.Errorf("experiments: table7 %s: %w", sc.s.Name(), err)
		}
		return res, nil
	})
}
