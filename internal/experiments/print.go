package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"monitorless/internal/core"
)

// PrintTable1 renders the training-run summary.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: training datasets (generated)")
	fmt.Fprintf(w, "%3s  %-10s %-18s %-14s %8s %6s %12s %4s\n",
		"#", "Service", "Traffic", "Bottleneck", "Samples", "Sat%", "Υ", "Par")
	for _, r := range rows {
		thr := fmt.Sprintf("%.1f", r.ThresholdY)
		if r.NeverSat {
			thr = "-"
		}
		par := ""
		if r.ParallelRun != 0 {
			par = fmt.Sprintf("%d", r.ParallelRun)
		}
		fmt.Fprintf(w, "%3d  %-10s %-18s %-14s %8d %5.1f%% %12s %4s\n",
			r.ID, r.Service, r.Traffic, r.Bottleneck, r.Samples, 100*r.Saturated, thr, par)
	}
}

// PrintTable2 renders the grid-search outcome.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: hyper-parameter grid search (grouped 5-fold CV)")
	for _, r := range rows {
		keys := make([]string, 0, len(r.BestParams))
		for k := range r.BestParams {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, r.BestParams[k]))
		}
		fmt.Fprintf(w, "  %-20s meanF1=%.3f (%d configs)  best: %s\n",
			r.Algorithm, r.MeanF1, r.Evaluated, strings.Join(parts, ", "))
	}
}

// PrintTable3 renders the algorithm comparison.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: performance of the applied algorithms")
	fmt.Fprintf(w, "  %-20s %14s %14s %8s\n", "Algorithm", "Training Time", "Class. Time", "F1_2")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %14s %14s %8.3f\n",
			r.Algorithm, r.TrainTime.Round(1e6), r.ClassifyTime, r.F1)
	}
}

// PrintTable4 renders the feature-importance ranking.
func PrintTable4(w io.Writer, rows []core.FeatureImportance) {
	fmt.Fprintln(w, "Table 4: top features by random-forest importance")
	for i, r := range rows {
		fmt.Fprintf(w, "  %2d. %-60s %.4f\n", i+1, r.Name, r.Importance)
	}
}

// PrintEvalTable renders a Table 5/6/8-style comparison.
func PrintEvalTable(w io.Writer, t *EvalTable) {
	fmt.Fprintf(w, "%s  (%d samples, %.1f%% saturated)\n", t.Title, t.Samples, 100*t.SaturatedFrac)
	fmt.Fprintf(w, "  %-22s %6s %6s %6s %6s %8s %8s\n", "Algorithm", "TN_2", "FP_2", "FN_2", "TP_2", "F1_2", "Acc_2")
	for _, r := range t.Rows {
		c := r.Confusion
		fmt.Fprintf(w, "  %-22s %6d %6d %6d %6d %8.3f %8.3f\n",
			r.Name, c.TN, c.FP, c.FN, c.TP, c.F1(), c.Accuracy())
	}
}

// PrintTable7 renders the autoscaling comparison.
func PrintTable7(w io.Writer, rows []Table7Row) {
	fmt.Fprintln(w, "Table 7: autoscaling on the TeaStore deployment")
	fmt.Fprintf(w, "  %-28s %18s %14s %10s\n", "Algorithm", "Provisioning (Avg)", "SLO viol. (#)", "ScaleOuts")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %17.1f%% %14d %10d\n", r.Policy, r.ProvisioningPct, r.SLOViolations, r.ScaleOuts)
	}
}

// PrintFigure2 renders the labeling walk-through as a text summary plus a
// CSV-like series suitable for plotting.
func PrintFigure2(w io.Writer, f *Figure2Data, series bool) {
	fmt.Fprintf(w, "Figure 2: knee at load=%.1f req/s, KPI=%.1f; threshold Υ=%.1f\n", f.KneeX, f.KneeY, f.ThresholdY)
	if !series {
		return
	}
	fmt.Fprintln(w, "load,observed,smoothed,difference")
	for i := range f.Loads {
		fmt.Fprintf(w, "%.2f,%.2f,%.2f,%.4f\n", f.Loads[i], f.Observed[i], f.Smoothed[i], f.Difference[i])
	}
}

// PrintFigure3 renders the per-service marker series.
func PrintFigure3(w io.Writer, f *Figure3Data, series bool) {
	fmt.Fprintln(w, "Figure 3: per-service predictions over the TeaStore run")
	for _, svc := range f.Services {
		var tp, fp, fn int
		for _, d := range f.Dots[svc] {
			switch d.Kind {
			case DotTP:
				tp++
			case DotFP:
				fp++
			default:
				fn++
			}
		}
		fmt.Fprintf(w, "  %-16s TP=%-5d FP=%-5d FN=%d\n", svc, tp, fp, fn)
	}
	if !series {
		return
	}
	fmt.Fprintln(w, "t,load,rt,service,kind")
	for _, svc := range f.Services {
		for _, d := range f.Dots[svc] {
			fmt.Fprintf(w, "%d,%.1f,%.3f,%s,%s\n", f.Times[d.T], f.Load[d.T], f.RT[d.T], svc, d.Kind)
		}
	}
}
