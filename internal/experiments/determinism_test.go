package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// TestContextDeterministicAcrossGOMAXPROCS rebuilds a reduced-scale
// context (full 25-run Table 1 generation + feature pipeline + forest)
// at pool widths 1 and 8 and compares a table and the trained model
// bit-for-bit. This covers the whole parallel chain: concurrent run
// groups in dataset.Generate, concurrent filter forests in the feature
// pipeline, and concurrent trees in the final forest.
func TestContextDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full contexts")
	}
	s := Small()
	s.TrainDuration = 200
	s.RampSeconds = 160
	s.Trees = 15
	s.FilterTrees = 10

	build := func() *Context {
		c, err := NewContext(s)
		if err != nil {
			t.Fatalf("NewContext: %v", err)
		}
		return c
	}
	old := runtime.GOMAXPROCS(1)
	narrow := build()
	runtime.GOMAXPROCS(8)
	wide := build()
	runtime.GOMAXPROCS(old)

	nRows, wRows := Table1Summary(narrow), Table1Summary(wide)
	if !reflect.DeepEqual(nRows, wRows) {
		t.Errorf("Table1Summary differs across GOMAXPROCS:\n 1: %+v\n 8: %+v", nRows, wRows)
	}
	nImp, wImp := narrow.Model.FeatureImportances(), wide.Model.FeatureImportances()
	if !reflect.DeepEqual(nImp, wImp) {
		t.Errorf("feature importances differ across GOMAXPROCS:\n 1: %+v\n 8: %+v", nImp, wImp)
	}
	if narrow.Model.TrainSamples != wide.Model.TrainSamples {
		t.Errorf("TrainSamples differ: %d vs %d", narrow.Model.TrainSamples, wide.Model.TrainSamples)
	}
}
