package experiments

import (
	"fmt"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/frame"
	"monitorless/internal/ml"
	"monitorless/internal/ml/boost"
	"monitorless/internal/ml/cv"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/linear"
	"monitorless/internal/ml/nn"
	"monitorless/internal/ml/score"
	"monitorless/internal/ml/tree"
	"monitorless/internal/parallel"
)

// Table1Row summarizes one generated training run.
type Table1Row struct {
	ID          int
	Service     string
	Traffic     string
	Bottleneck  string
	Samples     int
	Saturated   float64
	ThresholdY  float64
	NeverSat    bool
	ParallelRun int
}

// Table1Summary reports what the Table 1 generation produced.
func Table1Summary(ctx *Context) []Table1Row {
	var rows []Table1Row
	for _, cfg := range dataset.Table1() {
		sub := ctx.Report.Dataset.FilterRuns(cfg.ID)
		lab := ctx.Report.Thresholds[cfg.ID]
		rows = append(rows, Table1Row{
			ID:          cfg.ID,
			Service:     cfg.Service,
			Traffic:     cfg.TrafficDesc,
			Bottleneck:  cfg.Bottleneck,
			Samples:     len(sub.Samples),
			Saturated:   sub.SaturatedFraction(),
			ThresholdY:  lab.Threshold,
			NeverSat:    !lab.Saturates(),
			ParallelRun: cfg.Par,
		})
	}
	return rows
}

// AlgorithmSpec names one Table 3 contender and how to build it from a
// hyper-parameter assignment.
type AlgorithmSpec struct {
	// Name matches the paper's Table 3 row.
	Name string
	// Grid is the (scaled) Table 2 parameter space.
	Grid cv.Grid
	// Build constructs the classifier from an assignment.
	Build cv.Factory
}

// Algorithms returns the paper's six contenders with their Table 2 grids.
// lite shrinks each axis to the paper's chosen value plus one alternative.
func Algorithms(s Scale) []AlgorithmSpec {
	pick := func(all []any, lite []any) []any {
		if s.GridLite {
			return lite
		}
		return all
	}
	seed := s.Seed
	return []AlgorithmSpec{
		{
			Name: "SVC",
			Grid: cv.Grid{
				"C":            pick([]any{0.1, 1.0, 10.0}, []any{10.0, 1.0}),
				"tol":          pick([]any{0.01, 0.0001, 0.00001}, []any{0.01}),
				"penalty":      pick([]any{"l1", "l2"}, []any{"l1"}),
				"class_weight": pick([]any{"balanced", ""}, []any{""}),
			},
			Build: func(p map[string]any) (ml.Classifier, error) {
				pen := linear.L2
				if cv.Str(p, "penalty", "l1") == "l1" {
					pen = linear.L1
				}
				return linear.NewSVC(linear.SVCConfig{
					C:           cv.Float(p, "C", 10),
					Tol:         cv.Float(p, "tol", 0.01),
					Penalty:     pen,
					ClassWeight: cv.Str(p, "class_weight", ""),
					MaxEpochs:   20,
					Seed:        seed,
				}), nil
			},
		},
		{
			Name: "Logistic Regression",
			Grid: cv.Grid{
				"C":            pick([]any{0.01, 0.1, 1.0}, []any{1.0, 0.1}),
				"tol":          pick([]any{0.1, 0.01, 0.001, 0.0001}, []any{0.0001}),
				"class_weight": pick([]any{"balanced", ""}, []any{""}),
			},
			Build: func(p map[string]any) (ml.Classifier, error) {
				return linear.NewLogReg(linear.LogRegConfig{
					C:           cv.Float(p, "C", 1),
					Tol:         cv.Float(p, "tol", 1e-4),
					ClassWeight: cv.Str(p, "class_weight", ""),
					MaxEpochs:   20,
					Seed:        seed,
				}), nil
			},
		},
		{
			Name: "AdaBoost",
			Grid: cv.Grid{
				"n_estimators":         pick([]any{50, 250}, []any{50}),
				"algorithm":            pick([]any{"SAMME", "SAMME.R"}, []any{"SAMME", "SAMME.R"}),
				"DT_criterion":         pick([]any{"gini", "entropy"}, []any{"gini"}),
				"DT_splitter":          pick([]any{"random", "best"}, []any{"best"}),
				"DT_min_samples_split": pick([]any{5, 10, 20}, []any{5}),
			},
			Build: func(p map[string]any) (ml.Classifier, error) {
				variant := boost.SAMME
				if cv.Str(p, "algorithm", "SAMME") == "SAMME.R" {
					variant = boost.SAMMER
				}
				crit := tree.Gini
				if cv.Str(p, "DT_criterion", "gini") == "entropy" {
					crit = tree.Entropy
				}
				split := tree.Best
				if cv.Str(p, "DT_splitter", "best") == "random" {
					split = tree.Random
				} else if s.Splitter == tree.Hist {
					// The scale-level hist request replaces the exact
					// "best" scans; "random" stays random (it is its own
					// grid axis, not a split-search strategy variant).
					split = tree.Hist
				}
				return boost.NewAdaBoost(boost.AdaBoostConfig{
					NumEstimators:       cv.Int(p, "n_estimators", 50),
					Variant:             variant,
					TreeCriterion:       crit,
					TreeSplitter:        split,
					TreeBins:            s.Bins,
					TreeMinSamplesSplit: cv.Int(p, "DT_min_samples_split", 5),
					TreeMaxDepth:        3,
					Seed:                seed,
				}), nil
			},
		},
		{
			Name: "Neural Net",
			Grid: cv.Grid{
				"activation_function1": pick([]any{"softmax", "relu", "sigmoid", "linear"}, []any{"relu"}),
				"activation_function2": pick([]any{"softmax", "relu", "sigmoid", "linear"}, []any{"relu", "sigmoid"}),
				"activation_function3": pick([]any{"softmax", "relu", "sigmoid", "linear"}, []any{"sigmoid"}),
			},
			Build: func(p map[string]any) (ml.Classifier, error) {
				return nn.New(nn.Config{
					Hidden1: 64, Hidden2: 32,
					Act1:   nn.Activation(cv.Str(p, "activation_function1", "relu")),
					Act2:   nn.Activation(cv.Str(p, "activation_function2", "relu")),
					Act3:   nn.Activation(cv.Str(p, "activation_function3", "sigmoid")),
					Epochs: 15,
					Seed:   seed,
				}), nil
			},
		},
		{
			Name: "XGBoost",
			Grid: cv.Grid{
				"min_child_weight": pick([]any{1.0, 4.0, 16.0, 64.0}, []any{64.0, 1.0}),
				"max_depth":        pick([]any{1, 4, 16, 64}, []any{4}),
				"gamma":            pick([]any{0.0, 1.0, 4.0, 16.0}, []any{0.0}),
			},
			Build: func(p map[string]any) (ml.Classifier, error) {
				return boost.NewGBT(boost.GBTConfig{
					NumRounds:      60,
					MaxDepth:       cv.Int(p, "max_depth", 16),
					MinChildWeight: cv.Float(p, "min_child_weight", 1),
					Gamma:          cv.Float(p, "gamma", 0),
					// Row and column subsampling are XGBoost's standard
					// regularizers against the per-run memorization that
					// breaks transfer to unseen services.
					Subsample:       0.7,
					ColsampleByTree: 0.4,
					Hist:            s.Splitter == tree.Hist,
					Bins:            s.Bins,
					Seed:            seed,
				}), nil
			},
		},
		{
			Name: "Random Forest",
			Grid: cv.Grid{
				"n_estimators":      pick([]any{250, 500, 1000}, []any{s.Trees}),
				"min_samples_leaf":  pick([]any{5, 10, 20, 30}, []any{s.MinSamplesLeaf}),
				"min_samples_split": pick([]any{5, 10, 20, 30}, []any{5, 20}),
				"criterion":         pick([]any{"gini", "entropy"}, []any{"entropy"}),
				"class_weight":      pick([]any{"balanced", "subsample", ""}, []any{""}),
			},
			Build: func(p map[string]any) (ml.Classifier, error) {
				crit := tree.Gini
				if cv.Str(p, "criterion", "entropy") == "entropy" {
					crit = tree.Entropy
				}
				trees := cv.Int(p, "n_estimators", s.Trees)
				if s.GridLite && trees > s.Trees {
					trees = s.Trees
				}
				return forest.New(forest.Config{
					NumTrees:        trees,
					MinSamplesLeaf:  cv.Int(p, "min_samples_leaf", s.MinSamplesLeaf),
					MinSamplesSplit: cv.Int(p, "min_samples_split", 5),
					Criterion:       crit,
					ClassWeight:     cv.Str(p, "class_weight", ""),
					Splitter:        s.Splitter,
					Bins:            s.Bins,
					Seed:            seed,
				}), nil
			},
		},
	}
}

// Table2Row is one algorithm's grid-search outcome.
type Table2Row struct {
	Algorithm  string
	BestParams map[string]any
	MeanF1     float64
	Evaluated  int
}

// Table2 runs the §3.4 hyper-parameter grid search: grouped 5-fold CV over
// the training runs for every assignment of every algorithm's grid.
// maxRows subsamples the engineered training set to bound runtime (0 = all).
// The six algorithms fan out over the shared pool (and each grid search
// parallelizes its candidates in turn); rows come back in algorithm order.
func Table2(ctx *Context, maxRows int) ([]Table2Row, error) {
	fr, err := engineeredTrainingFrame(ctx, maxRows)
	if err != nil {
		return nil, err
	}
	specs := Algorithms(ctx.Scale)
	return parallel.Map(len(specs), func(i int) (Table2Row, error) {
		spec := specs[i]
		results, err := cv.GridSearchFrame(spec.Build, spec.Grid, fr, nil, 5)
		if err != nil {
			return Table2Row{}, fmt.Errorf("experiments: grid %s: %w", spec.Name, err)
		}
		return Table2Row{
			Algorithm:  spec.Name,
			BestParams: results[0].Params,
			MeanF1:     results[0].MeanF1,
			Evaluated:  len(results),
		}, nil
	})
}

// engineeredTrainingFrame transforms the Table 1 corpus through the fitted
// pipeline and optionally subsamples rows (strided, run-preserving). The
// result is one shared read-only frame; the grid searches fit index views
// of it and never copy the feature matrix per fold.
func engineeredTrainingFrame(ctx *Context, maxRows int) (*frame.Frame, error) {
	engineered, err := ctx.Model.Pipeline.TransformFrame(ctx.Report.Dataset.Frame())
	if err != nil {
		return nil, fmt.Errorf("experiments: engineer training set: %w", err)
	}
	if maxRows <= 0 || engineered.Rows() <= maxRows {
		return engineered, nil
	}
	stride := (engineered.Rows() + maxRows - 1) / maxRows
	idx := make([]int, 0, maxRows)
	for i := 0; i < engineered.Rows(); i += stride {
		idx = append(idx, i)
	}
	return subsampleGrouped(engineered, idx), nil
}

// subsampleGrouped gathers the (increasing) row indices into a fresh frame,
// rebuilding run spans so grouped CV still sees the run structure that
// Frame.SelectRows (single anonymous span) deliberately discards.
func subsampleGrouped(fr *frame.Frame, idx []int) *frame.Frame {
	gids := fr.GroupIDs()
	var spans []frame.Span
	labels := fr.Labels()
	var subLabels []int
	if labels != nil {
		subLabels = make([]int, len(idx))
	}
	for p, i := range idx {
		if p == 0 || gids[i] != gids[idx[p-1]] {
			spans = append(spans, frame.Span{ID: gids[i], Start: p, End: p + 1})
		} else {
			spans[len(spans)-1].End = p + 1
		}
		if labels != nil {
			subLabels[p] = labels[i]
		}
	}
	out := frame.NewDense(fr.Schema(), len(idx), spans, subLabels)
	for j := 0; j < fr.NumCols(); j++ {
		src, dst := fr.Col(j), out.Col(j)
		for p, i := range idx {
			dst[p] = src[i]
		}
	}
	return out
}

// engineeredTraining is the row-oriented adapter over
// engineeredTrainingFrame, kept for callers that still want materialized
// rows (and to pin the frame path to the row path in tests).
func engineeredTraining(ctx *Context, maxRows int) (x [][]float64, y, groups []int, err error) {
	fr, err := engineeredTrainingFrame(ctx, maxRows)
	if err != nil {
		return nil, nil, nil, err
	}
	return fr.MaterializeRows(), fr.Labels(), fr.GroupIDs(), nil
}

// Table3Row is one algorithm comparison row: training time, per-sample
// classification time and F1₂ on the first validation set (Elgg).
type Table3Row struct {
	Algorithm    string
	TrainTime    time.Duration
	ClassifyTime time.Duration // per sample
	F1           float64
	Confusion    score.Confusion
}

// Table3 trains each contender (at the paper's chosen hyper-parameters)
// on the engineered Table 1 corpus and scores it on the Elgg validation
// run with the lagged F1₂ metric. The contenders run serially on purpose:
// this table's point is the per-algorithm train/classify wall-clock, and
// concurrent fits would contend for cores and distort those timings.
func Table3(ctx *Context, elgg *EvalData) ([]Table3Row, error) {
	fr, err := engineeredTrainingFrame(ctx, 0)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, spec := range Algorithms(ctx.Scale) {
		clf, err := spec.Build(chosenParams(spec.Name, ctx.Scale))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := ml.FitFrame(clf, fr, nil, nil); err != nil {
			return nil, fmt.Errorf("experiments: table3 fit %s: %w", spec.Name, err)
		}
		trainTime := time.Since(start)

		start = time.Now()
		pred, err := elgg.ClassifierPredictions(ctx.Model.Pipeline, clf)
		if err != nil {
			return nil, fmt.Errorf("experiments: table3 eval %s: %w", spec.Name, err)
		}
		classified := len(pred) * len(elgg.InstIDs)
		perSample := time.Duration(0)
		if classified > 0 {
			perSample = time.Since(start) / time.Duration(classified)
		}
		c, err := score.CountLagged(pred, elgg.Truth, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Algorithm:    spec.Name,
			TrainTime:    trainTime,
			ClassifyTime: perSample,
			F1:           c.F1(),
			Confusion:    c,
		})
	}
	return rows, nil
}

// chosenParams returns the paper's underlined Table 2 selections.
func chosenParams(algorithm string, s Scale) map[string]any {
	switch algorithm {
	case "SVC":
		return map[string]any{"C": 10.0, "tol": 0.01, "penalty": "l1", "class_weight": ""}
	case "Logistic Regression":
		return map[string]any{"C": 1.0, "tol": 0.0001, "class_weight": ""}
	case "AdaBoost":
		return map[string]any{"n_estimators": 50, "algorithm": "SAMME", "DT_criterion": "gini", "DT_splitter": "best", "DT_min_samples_split": 5}
	case "Neural Net":
		return map[string]any{"activation_function1": "relu", "activation_function2": "relu", "activation_function3": "sigmoid"}
	case "XGBoost":
		// The paper's grid selects max_depth 64 / min_child_weight 1 on
		// its 63k-sample corpus; on our smaller corpus the grouped-CV
		// grid search lands on shallow, heavily regularized trees
		// (deep unregularized trees memorize per-run scales and fail to
		// transfer to unseen services).
		return map[string]any{"min_child_weight": 64.0, "max_depth": 4, "gamma": 0.0}
	default: // Random Forest
		return map[string]any{"n_estimators": s.Trees, "min_samples_leaf": s.MinSamplesLeaf, "min_samples_split": 5, "criterion": "entropy", "class_weight": ""}
	}
}

// Table4 returns the model's top-K feature importances (paper: top 30).
func Table4(ctx *Context, topK int) []core.FeatureImportance {
	imp := ctx.Model.FeatureImportances()
	if topK > 0 && len(imp) > topK {
		imp = imp[:topK]
	}
	return imp
}
