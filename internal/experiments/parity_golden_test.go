package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"monitorless/internal/features"
	"monitorless/internal/ml"
	"monitorless/internal/ml/cv"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
)

var updateParity = flag.Bool("update-parity", false, "rewrite the pipeline parity fixture")

// parityScale is the reduced seed configuration the fixture is pinned to.
func parityScale() Scale {
	s := Small()
	s.TrainDuration = 200
	s.RampSeconds = 160
	s.Trees = 15
	s.FilterTrees = 10
	return s
}

// parityDump captures everything the Table 2 pipeline produces on the seed
// config, with every float rendered in its shortest round-trippable form:
// the engineered schema, the forest's feature importances, per-run
// prediction series, and a grouped 5-fold CV result for the selected
// random-forest configuration. Two dumps are equal iff the artifacts are
// bit-identical.
func parityDump(t *testing.T, ctx *Context) string {
	t.Helper()
	var b strings.Builder
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	b.WriteString("schema: " + strings.Join(ctx.Model.Pipeline.OutputNames(), ",") + "\n")
	for _, fi := range ctx.Model.FeatureImportances() {
		fmt.Fprintf(&b, "importance %s %s\n", fi.Name, f(fi.Importance))
	}

	preds, probs, err := predictTrainingCorpus(ctx)
	if err != nil {
		t.Fatalf("predict training corpus: %v", err)
	}
	for _, id := range ctx.Report.Dataset.RunIDs() {
		fmt.Fprintf(&b, "run %d:", id)
		ps, qs := preds[id], probs[id]
		for j := range qs {
			fmt.Fprintf(&b, " %d/%s", ps[j], f(qs[j]))
		}
		b.WriteByte('\n')
	}

	res, err := crossValidateSelected(ctx)
	if err != nil {
		t.Fatalf("cv: %v", err)
	}
	fmt.Fprintf(&b, "cv meanF1 %s meanAcc %s folds", f(res.MeanF1), f(res.MeanAccuracy))
	for _, v := range res.FoldF1 {
		b.WriteString(" " + f(v))
	}
	b.WriteByte('\n')
	return b.String()
}

// predictTrainingCorpus batch-classifies the Table 1 corpus per run.
func predictTrainingCorpus(ctx *Context) (map[int][]int, map[int][]float64, error) {
	return ctx.Model.PredictTable(features.FromDataset(ctx.Report.Dataset))
}

// crossValidateSelected runs grouped 5-fold CV for the paper's selected
// random-forest configuration over the engineered training corpus.
func crossValidateSelected(ctx *Context) (cv.Result, error) {
	x, y, groups, err := engineeredTraining(ctx, 0)
	if err != nil {
		return cv.Result{}, err
	}
	factory := func(p map[string]any) (ml.Classifier, error) {
		return forest.New(forest.Config{
			NumTrees:       10,
			MinSamplesLeaf: cv.Int(p, "min_samples_leaf", 20),
			Criterion:      tree.Entropy,
			Seed:           ctx.Scale.Seed,
		}), nil
	}
	return cv.CrossValidate(factory, map[string]any{"min_samples_leaf": 20}, x, y, groups, 5)
}

// TestTable2PipelineParityGolden locks the full Table 2 pipeline — dataset
// generation, feature engineering, forest training, batch prediction and
// grouped CV — to a committed fixture on the seed config. The fixture was
// generated on the row-oriented ([][]float64) data plane; the columnar
// frame refactor must reproduce it bit for bit. Refresh intentionally with:
//
//	go test ./internal/experiments/ -run TestTable2PipelineParityGolden -update-parity
func TestTable2PipelineParityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full context")
	}
	ctx, err := NewContext(parityScale())
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	got := parityDump(t, ctx)

	path := filepath.Join("testdata", "table2_parity_golden.txt")
	if *updateParity {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update-parity to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Table 2 pipeline diverged from %s\ngot %d bytes, want %d bytes\nfirst difference: %s",
			path, len(got), len(want), parityFirstDiff(got, string(want)))
	}
}

func parityFirstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			ga, gb := la[i], lb[i]
			if len(ga) > 160 {
				ga = ga[:160] + "…"
			}
			if len(gb) > 160 {
				gb = gb[:160] + "…"
			}
			return fmt.Sprintf("line %d:\n got: %q\nwant: %q", i+1, ga, gb)
		}
	}
	return fmt.Sprintf("line count %d vs %d", len(la), len(lb))
}
