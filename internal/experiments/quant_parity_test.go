package experiments

import (
	"math"
	"testing"

	"monitorless/internal/ml"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
)

// TestTable2QuantBitIdentity is the acceptance golden for the compiled
// quantized predictor: on the engineered Table 2 training corpus — the
// heavy-tie, saturated-counter regime the paper's features produce — a
// histogram-trained forest's quantized batch predictions must be
// bit-identical to the float tree walk, at block-level parallelism 1, 4
// and 8 alike. This is the end-to-end pin that the uint8-code traversal
// is an exact reformulation on real pipeline output, not merely on
// synthetic unit-test columns.
func TestTable2QuantBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full context")
	}
	ctx, err := NewContext(parityScale())
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	x, y, _, err := engineeredTraining(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	f := forest.New(forest.Config{
		NumTrees:       10,
		MinSamplesLeaf: 20,
		Criterion:      tree.Entropy,
		Splitter:       tree.Hist,
		Seed:           ctx.Scale.Seed,
	})
	if err := f.Fit(x, y); err != nil {
		t.Fatalf("fit: %v", err)
	}
	q := f.Quant()
	if q == nil || !f.QuantActive() {
		t.Fatal("hist fit did not install an active quantized predictor")
	}
	if !q.FullyQuantized() {
		t.Fatalf("engineered-corpus hist forest not fully quantized: %d float nodes", q.FloatNodes())
	}

	fr := ml.FrameOf(x)
	f.SetQuantPredict(false)
	want := f.PredictProbaFrameRows(fr, nil)
	f.SetQuantPredict(true)

	for _, workers := range []int{1, 4, 8} {
		q.SetParallelism(workers)
		got := f.PredictProbaFrameRows(fr, nil)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("workers=%d row %d: quant %v (%#x) vs float %v (%#x)",
					workers, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
		}
	}
	q.SetParallelism(0)

	// The walk must also agree with the per-row reference on a sample of
	// rows — the serving plane's single-vector path.
	for i := 0; i < len(x); i += 997 {
		if p := f.PredictProba(x[i]); math.Float64bits(p) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: per-row %v vs batch %v", i, p, want[i])
		}
	}
}
