package experiments

import (
	"fmt"
	"sort"

	"monitorless/internal/apps"
	"monitorless/internal/cluster"
	"monitorless/internal/kneedle"
	"monitorless/internal/label"
	"monitorless/internal/workload"
)

// Figure2Data reproduces the paper's Figure 2: the observed throughput of
// a linearly increasing load run, its smoothed curve, the normalized
// difference curve β−α, and the chosen knee.
type Figure2Data struct {
	// Loads and Observed are the raw (α, β) points.
	Loads, Observed []float64
	// Smoothed is the Savitzky-Golay curve.
	Smoothed []float64
	// Difference is the normalized β−α curve.
	Difference []float64
	// KneeX / KneeY locate the selected saturation point; ThresholdY is Υ.
	KneeX, KneeY float64
	ThresholdY   float64
}

// Figure2 runs the labeling walk-through on the Table 1 run-1 setup
// (Solr, 3 cores) with a linear ramp, exactly as §2.2 describes.
func Figure2(s Scale) (*Figure2Data, error) {
	build := func(load workload.Pattern) (*apps.Engine, *apps.App, error) {
		c, err := cluster.New(apps.TrainingNode("host"))
		if err != nil {
			return nil, nil, err
		}
		app, err := apps.Build(c, "fig2", load, []apps.ServiceSpec{
			{Name: "solr", Node: "host", Profile: apps.SolrProfile(), Visit: 1, CPULimit: 3},
		})
		if err != nil {
			return nil, nil, err
		}
		eng, err := apps.NewEngine(c, app)
		return eng, app, err
	}

	seconds := s.RampSeconds
	if seconds < 100 {
		seconds = 100
	}
	eng, app, err := build(workload.Ramp{From: 10, To: 1200, Duration: seconds})
	if err != nil {
		return nil, err
	}
	var loads, observed []float64
	eng.Run(seconds, func(int) {
		loads = append(loads, app.KPI.Offered)
		observed = append(observed, app.KPI.Throughput)
	})

	res, err := kneedle.Detect(loads, observed, kneedle.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2 kneedle: %w", err)
	}
	lab, _, err := label.DiscoverThreshold(loads, observed, label.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2 threshold: %w", err)
	}
	best, ok := res.Best()
	if !ok {
		return nil, fmt.Errorf("experiments: figure2 found no knee")
	}
	return &Figure2Data{
		Loads:      loads,
		Observed:   observed,
		Smoothed:   res.Smoothed,
		Difference: res.Difference,
		KneeX:      best.X,
		KneeY:      best.Y,
		ThresholdY: lab.Threshold,
	}, nil
}

// DotKind classifies one Figure 3 marker.
type DotKind int

// Figure 3 marker kinds: green TP₂, yellow FP₂, red FN₂.
const (
	DotTP DotKind = iota
	DotFP
	DotFN
)

// String implements fmt.Stringer.
func (d DotKind) String() string {
	switch d {
	case DotTP:
		return "TP"
	case DotFP:
		return "FP"
	default:
		return "FN"
	}
}

// Dot is one Figure 3 marker.
type Dot struct {
	// T indexes into the recorded tick series.
	T int
	// Kind is TP/FP/FN (lagged semantics).
	Kind DotKind
}

// Figure3Data carries the per-service prediction markers plus the
// workload and response-time curves of the TeaStore run.
type Figure3Data struct {
	// Times, Load, RT are the shared x-axis and the gray/purple curves.
	Times []int
	Load  []float64
	RT    []float64
	// Services lists the service rows in display order; Dots maps each
	// service to its markers. The synthetic "APP" row carries the FN₂
	// markers, which cannot be attributed to a single service (§4.2.2).
	Services []string
	Dots     map[string][]Dot
}

// Figure3 classifies each service's predictions against the application
// ground truth with the lagged (k=2) semantics and collects the markers.
func Figure3(data *EvalData, perInst map[string][]int) *Figure3Data {
	// Aggregate instance predictions per service.
	perService := map[string][]int{}
	for id, series := range perInst {
		svc := data.ServiceOf[id]
		agg := perService[svc]
		if agg == nil {
			agg = make([]int, len(series))
			perService[svc] = agg
		}
		for t, p := range series {
			if p == 1 {
				agg[t] = 1
			}
		}
	}

	fig := &Figure3Data{
		Times: data.Times,
		Load:  data.Loads,
		RT:    data.RTs,
		Dots:  map[string][]Dot{},
	}
	for svc := range perService {
		fig.Services = append(fig.Services, svc)
	}
	sort.Strings(fig.Services)

	truth := data.Truth
	n := len(truth)
	for _, svc := range fig.Services {
		pred := perService[svc]
		for t := 0; t < n; t++ {
			if pred[t] != 1 {
				continue
			}
			switch {
			case truth[t] == 1:
				fig.Dots[svc] = append(fig.Dots[svc], Dot{T: t, Kind: DotTP})
			case upcomingSaturation(truth, t, Lag):
				// Early warning within the lag window: counted as TN₂ in
				// the metric; shown green here because it was vindicated.
				fig.Dots[svc] = append(fig.Dots[svc], Dot{T: t, Kind: DotTP})
			default:
				fig.Dots[svc] = append(fig.Dots[svc], Dot{T: t, Kind: DotFP})
			}
		}
	}

	// FN₂ markers at the application level.
	appPred := make([]int, n)
	for _, series := range perService {
		for t, p := range series {
			if p == 1 {
				appPred[t] = 1
			}
		}
	}
	const appRow = "APP"
	fig.Services = append(fig.Services, appRow)
	for t := 0; t < n; t++ {
		if truth[t] == 1 && appPred[t] == 0 && !recentPositive(appPred, t, Lag) {
			fig.Dots[appRow] = append(fig.Dots[appRow], Dot{T: t, Kind: DotFN})
		}
	}
	return fig
}

func upcomingSaturation(truth []int, t, k int) bool {
	for dt := 1; dt <= k && t+dt < len(truth); dt++ {
		if truth[t+dt] == 1 {
			return true
		}
	}
	return false
}

func recentPositive(pred []int, t, k int) bool {
	for dt := 1; dt <= k && t-dt >= 0; dt++ {
		if pred[t-dt] == 1 {
			return true
		}
	}
	return false
}

// RampCurve is a convenience for examples: it exposes the (α, β) curve of
// a fresh ramp run of any builder, for visual inspection as §2.2 advises.
func RampCurve(build BuildTarget, maxRate float64, seconds int) (loads, observed []float64, err error) {
	eng, app, err := build(workload.Ramp{From: maxRate / 100, To: maxRate, Duration: seconds})
	if err != nil {
		return nil, nil, err
	}
	eng.Run(seconds, func(int) {
		loads = append(loads, app.KPI.Offered)
		observed = append(observed, app.KPI.Throughput)
	})
	return loads, observed, nil
}
