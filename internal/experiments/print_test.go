package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/ml/score"
)

func TestPrintTable2(t *testing.T) {
	var buf bytes.Buffer
	PrintTable2(&buf, []Table2Row{
		{Algorithm: "Random Forest", BestParams: map[string]any{"criterion": "entropy", "n_estimators": 250}, MeanF1: 0.93, Evaluated: 12},
	})
	out := buf.String()
	for _, frag := range []string{"Random Forest", "meanF1=0.930", "criterion=entropy", "12 configs"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintTable3(t *testing.T) {
	var buf bytes.Buffer
	PrintTable3(&buf, []Table3Row{
		{Algorithm: "SVC", TrainTime: 837800 * time.Millisecond, ClassifyTime: 200 * time.Microsecond, F1: 0.579},
	})
	out := buf.String()
	if !strings.Contains(out, "SVC") || !strings.Contains(out, "0.579") {
		t.Errorf("Table 3 output malformed:\n%s", out)
	}
}

func TestPrintTable7(t *testing.T) {
	var buf bytes.Buffer
	PrintTable7(&buf, []Table7Row{
		{Policy: "monitorless", SLOViolations: 7, ProvisioningPct: 10, ScaleOuts: 9},
	})
	out := buf.String()
	for _, frag := range []string{"monitorless", "10.0%", "7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 7 output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintEvalTableFormatsConfusion(t *testing.T) {
	var buf bytes.Buffer
	PrintEvalTable(&buf, &EvalTable{
		Title:         "Table X",
		Samples:       100,
		SaturatedFrac: 0.25,
		Rows: []EvalRow{
			{Name: "CPU (95%)", Confusion: score.Confusion{TN: 70, FP: 5, FN: 5, TP: 20}},
		},
	})
	out := buf.String()
	for _, frag := range []string{"Table X", "25.0% saturated", "CPU (95%)", "0.800", "0.900"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintFigure3Series(t *testing.T) {
	fig := &Figure3Data{
		Times:    []int{10, 11},
		Load:     []float64{100, 200},
		RT:       []float64{0.1, 2.5},
		Services: []string{"auth", "APP"},
		Dots: map[string][]Dot{
			"auth": {{T: 0, Kind: DotTP}, {T: 1, Kind: DotFP}},
			"APP":  {{T: 1, Kind: DotFN}},
		},
	}
	var buf bytes.Buffer
	PrintFigure3(&buf, fig, true)
	out := buf.String()
	for _, frag := range []string{"auth", "TP=1", "FP=1", "FN=1", "t,load,rt,service,kind", "11,200.0,2.500,APP,FN"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintAblation(t *testing.T) {
	var buf bytes.Buffer
	PrintAblation(&buf, []AblationRow{
		{Name: "full (paper)", Features: 247, TrainTime: 20 * time.Second, ElggF1: 0.991, TeaStoreF1: 0.653},
	})
	out := buf.String()
	for _, frag := range []string{"full (paper)", "247", "0.991", "0.653"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintTable4FromModel(t *testing.T) {
	var buf bytes.Buffer
	PrintTable4(&buf, []core.FeatureImportance{{Name: "C-CPU-U × C-CPU-HIGH", Importance: 0.12}})
	if !strings.Contains(buf.String(), "C-CPU-U × C-CPU-HIGH") {
		t.Errorf("Table 4 output malformed:\n%s", buf.String())
	}
}
