package experiments

import (
	"math"
	"testing"

	"monitorless/internal/ml"
	"monitorless/internal/ml/cv"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
)

// TestTable2HistExactParity pins the histogram splitter's approximation
// quality on the real pipeline: grouped 5-fold CV of the paper's selected
// random-forest configuration over the engineered Table 2 training
// corpus, exact vs hist (256 bins), must agree on mean F1 and accuracy
// within a small tolerance. The engineered features carry heavy ties
// (saturated counters, rate ratios), which is exactly the regime where
// quantile binning could plausibly distort splits.
func TestTable2HistExactParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full context")
	}
	ctx, err := NewContext(parityScale())
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	x, y, groups, err := engineeredTraining(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	run := func(sp tree.Splitter) cv.Result {
		factory := func(p map[string]any) (ml.Classifier, error) {
			return forest.New(forest.Config{
				NumTrees:       10,
				MinSamplesLeaf: 20,
				Criterion:      tree.Entropy,
				Splitter:       sp,
				Seed:           ctx.Scale.Seed,
			}), nil
		}
		res, err := cv.CrossValidate(factory, nil, x, y, groups, 5)
		if err != nil {
			t.Fatalf("cv(%v): %v", sp, err)
		}
		return res
	}
	exact := run(tree.Best)
	hist := run(tree.Hist)

	const tol = 0.03
	if d := math.Abs(exact.MeanF1 - hist.MeanF1); d > tol {
		t.Errorf("mean F1: exact %.4f, hist %.4f (|Δ| = %.4f > %v)",
			exact.MeanF1, hist.MeanF1, d, tol)
	}
	if d := math.Abs(exact.MeanAccuracy - hist.MeanAccuracy); d > tol {
		t.Errorf("mean accuracy: exact %.4f, hist %.4f (|Δ| = %.4f > %v)",
			exact.MeanAccuracy, hist.MeanAccuracy, d, tol)
	}
	// Both must actually work — agreement between two broken models is
	// not parity.
	if exact.MeanF1 < 0.8 || hist.MeanF1 < 0.8 {
		t.Errorf("mean F1 too low for a meaningful comparison: exact %.4f, hist %.4f",
			exact.MeanF1, hist.MeanF1)
	}
}
