package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"monitorless/internal/ml/score"
)

// The shared context is expensive (full Table 1 generation + training);
// build it once per test binary at a reduced scale.
var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

func testScale() Scale {
	s := Small()
	s.TrainDuration = 250
	s.RampSeconds = 200
	s.ElggDuration = 400
	s.TeaStoreDuration = 1000
	s.Trees = 30
	return s
}

func sharedContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() { ctx, ctxErr = NewContext(testScale()) })
	if ctxErr != nil {
		t.Fatalf("NewContext: %v", ctxErr)
	}
	return ctx
}

func TestContextTrainingMix(t *testing.T) {
	c := sharedContext(t)
	frac := c.Report.Dataset.SaturatedFraction()
	// The paper's corpus is 26% saturated; ours must be in the same band.
	if frac < 0.15 || frac > 0.40 {
		t.Errorf("training saturated fraction %.2f, want ~0.26", frac)
	}
	if c.Model.Pipeline.NumOutputs() < 20 {
		t.Errorf("engineered features = %d, want a rich set", c.Model.Pipeline.NumOutputs())
	}
	if got := len(c.Report.Dataset.RunIDs()); got != 25 {
		t.Errorf("training corpus has %d runs, want the 25 of Table 1", got)
	}
}

func TestTable1Summary(t *testing.T) {
	c := sharedContext(t)
	rows := Table1Summary(c)
	if len(rows) != 25 {
		t.Fatalf("Table1Summary has %d rows, want 25", len(rows))
	}
	saturating := 0
	for _, r := range rows {
		if r.Samples == 0 {
			t.Errorf("run %d has no samples", r.ID)
		}
		if !r.NeverSat {
			saturating++
		}
	}
	if saturating < 12 {
		t.Errorf("only %d runs saturate; the corpus needs saturation diversity", saturating)
	}
}

func TestFigure2(t *testing.T) {
	fig, err := Figure2(testScale())
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(fig.Loads) != len(fig.Observed) || len(fig.Smoothed) != len(fig.Loads) || len(fig.Difference) != len(fig.Loads) {
		t.Fatal("Figure 2 series misaligned")
	}
	// The knee must land near the 857 r/s capacity of Solr@3cores.
	if fig.KneeX < 500 || fig.KneeX > 1100 {
		t.Errorf("knee at %.0f req/s, want near ~857", fig.KneeX)
	}
	if fig.ThresholdY <= 0 || fig.ThresholdY > 1000 {
		t.Errorf("threshold Υ = %.1f out of range", fig.ThresholdY)
	}
}

func TestElggEvaluationShape(t *testing.T) {
	c := sharedContext(t)
	data, err := CollectElgg(c)
	if err != nil {
		t.Fatalf("CollectElgg: %v", err)
	}
	// The paper's Elgg test set is ~75% saturated.
	if f := data.SaturatedFraction(); f < 0.5 || f > 0.92 {
		t.Errorf("Elgg saturated fraction %.2f, want ~0.75", f)
	}
	table, err := Table5(c, data)
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("Table 5 has %d rows, want 5", len(table.Rows))
	}
	// Shape: on the CPU-bound 3-tier app everything is accurate and
	// monitorless matches the optimally tuned CPU baseline (paper: 0.997
	// vs 0.999).
	byName := map[string]score.Confusion{}
	for _, r := range table.Rows {
		byName[strings.SplitN(r.Name, " ", 2)[0]] = r.Confusion
	}
	mon := byName["monitorless"]
	cpu := byName["CPU"]
	if mon.F1() < 0.9 {
		t.Errorf("monitorless F1₂ = %.3f, want ≈0.99 on Elgg", mon.F1())
	}
	if cpu.F1() < 0.9 {
		t.Errorf("CPU baseline F1₂ = %.3f, want ≈0.99 on Elgg", cpu.F1())
	}
	if mon.FN > 5 {
		t.Errorf("monitorless FN₂ = %d, want ~0 (the paper reports none)", mon.FN)
	}
}

func TestTeaStoreEvaluationShape(t *testing.T) {
	c := sharedContext(t)
	data, err := CollectTeaStore(c)
	if err != nil {
		t.Fatalf("CollectTeaStore: %v", err)
	}
	// Low saturation ratio (paper: 2.9%).
	if f := data.SaturatedFraction(); f < 0.005 || f > 0.12 {
		t.Errorf("TeaStore saturated fraction %.3f, want ~0.03", f)
	}
	table, perInst, err := Table6(c, data)
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	var mem, or, and, mon, cpu score.Confusion
	for _, r := range table.Rows {
		switch {
		case strings.HasPrefix(r.Name, "MEM"):
			mem = r.Confusion
		case r.Name == "CPU-OR-MEM":
			or = r.Confusion
		case r.Name == "CPU-AND-MEM":
			and = r.Confusion
		case r.Name == "monitorless":
			mon = r.Confusion
		case strings.HasPrefix(r.Name, "CPU"):
			cpu = r.Confusion
		}
	}
	// Paper shapes: MEM and OR are useless (the static JVM heap fires the
	// rule constantly); AND and CPU are strong; monitorless is competitive
	// without any tuning and has the fewest false negatives.
	if mem.F1() > 0.4 || or.F1() > 0.4 {
		t.Errorf("MEM/OR F1₂ = %.3f/%.3f, want both near-useless as in the paper", mem.F1(), or.F1())
	}
	if and.F1() < cpu.F1()-0.05 {
		t.Errorf("CPU-AND-MEM (%.3f) should be at least on par with CPU (%.3f)", and.F1(), cpu.F1())
	}
	if mon.F1() < 0.35 {
		t.Errorf("monitorless F1₂ = %.3f, want competitive (~0.6-0.7)", mon.F1())
	}
	if mon.FN > and.FN {
		t.Errorf("monitorless FN₂ = %d should not exceed AND's %d (its design goal)", mon.FN, and.FN)
	}
	if mon.Accuracy() < 0.9 {
		t.Errorf("monitorless Acc₂ = %.3f, want > 0.9 (paper: 0.977)", mon.Accuracy())
	}

	// Figure 3 derives from the same run.
	fig := Figure3(data, perInst)
	if len(fig.Services) < 8 { // 7 TeaStore services + APP row
		t.Errorf("Figure 3 has %d rows, want 7 services + APP", len(fig.Services))
	}
	totalDots := 0
	for _, d := range fig.Dots {
		totalDots += len(d)
	}
	if totalDots == 0 {
		t.Error("Figure 3 has no markers at all")
	}
}

func TestSockshopEvaluationShape(t *testing.T) {
	c := sharedContext(t)
	data, err := CollectSockshop(c)
	if err != nil {
		t.Fatalf("CollectSockshop: %v", err)
	}
	// Paper: 10.1% saturated; our small scale lands nearby.
	if f := data.SaturatedFraction(); f < 0.04 || f > 0.30 {
		t.Errorf("Sockshop saturated fraction %.3f, want ~0.10-0.15", f)
	}
	table, err := Table8(c, data)
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	var mem, or, and, mon score.Confusion
	for _, r := range table.Rows {
		switch {
		case strings.HasPrefix(r.Name, "MEM"):
			mem = r.Confusion
		case r.Name == "CPU-OR-MEM":
			or = r.Confusion
		case r.Name == "CPU-AND-MEM":
			and = r.Confusion
		case r.Name == "monitorless":
			mon = r.Confusion
		}
	}
	// Paper ordering: AND best; MEM and OR near-useless; monitorless in
	// the competitive middle with zero-ish FN₂.
	if and.F1() <= mon.F1() {
		t.Errorf("CPU-AND-MEM (%.3f) should beat monitorless (%.3f) on Sockshop, as in the paper", and.F1(), mon.F1())
	}
	if mem.F1() > 0.5 || or.F1() > 0.5 {
		t.Errorf("MEM/OR F1₂ = %.3f/%.3f, want near-useless", mem.F1(), or.F1())
	}
	if mon.F1() < 0.4 {
		t.Errorf("monitorless F1₂ = %.3f, want competitive (~0.6)", mon.F1())
	}
	if mon.FN > 10 {
		t.Errorf("monitorless FN₂ = %d, want near zero", mon.FN)
	}
}

func TestFigure3DotSemantics(t *testing.T) {
	data := &EvalData{
		ServiceOf: map[string]string{"a/x/0": "x"},
		Truth:     []int{0, 0, 1, 1, 0, 1},
		Loads:     []float64{1, 1, 1, 1, 1, 1},
		RTs:       []float64{1, 1, 1, 1, 1, 1},
		Times:     []int{0, 1, 2, 3, 4, 5},
		InstIDs:   []string{"a/x/0"},
	}
	perInst := map[string][]int{"a/x/0": {1, 1, 1, 0, 0, 0}}
	fig := Figure3(data, perInst)
	var tp, fp, fn int
	for _, dots := range fig.Dots {
		for _, d := range dots {
			switch d.Kind {
			case DotTP:
				tp++
			case DotFP:
				fp++
			case DotFN:
				fn++
			}
		}
	}
	// t0: pred 1, truth 0, no truth within 2 → wait, truth[2]=1 is within
	// k=2 of t0 → vindicated TP. t1: vindicated TP. t2: TP. t3: truth 1,
	// pred 0, but pred[1..2]=1 → forgiven (no FN). t5: truth 1, pred 0,
	// preds at 3,4 are 0 → FN.
	if tp != 3 {
		t.Errorf("TP dots = %d, want 3", tp)
	}
	if fp != 0 {
		t.Errorf("FP dots = %d, want 0", fp)
	}
	if fn != 1 {
		t.Errorf("FN dots = %d, want 1", fn)
	}
	if fig.Services[len(fig.Services)-1] != "APP" {
		t.Error("FN markers should sit on the APP row")
	}
}

func TestDotKindString(t *testing.T) {
	if DotTP.String() != "TP" || DotFP.String() != "FP" || DotFN.String() != "FN" {
		t.Error("DotKind strings wrong")
	}
}

func TestBaselineModeString(t *testing.T) {
	if BaselineCPU.String() != "CPU" || BaselineCPUAndMem.String() != "CPU-AND-MEM" {
		t.Error("BaselineMode strings wrong")
	}
	if !strings.Contains(BaselineMode(9).String(), "9") {
		t.Error("unknown mode string")
	}
}

func TestAlgorithmsCoverTable3(t *testing.T) {
	specs := Algorithms(Small())
	want := []string{"SVC", "Logistic Regression", "AdaBoost", "Neural Net", "XGBoost", "Random Forest"}
	if len(specs) != len(want) {
		t.Fatalf("got %d algorithms, want 6", len(specs))
	}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("algorithm %d = %s, want %s", i, s.Name, want[i])
		}
		if len(s.Grid) == 0 {
			t.Errorf("%s has an empty grid", s.Name)
		}
		// Every algorithm must build from its chosen parameters.
		clf, err := s.Build(chosenParams(s.Name, Small()))
		if err != nil || clf == nil {
			t.Errorf("%s Build failed: %v", s.Name, err)
		}
	}
}

func TestTable4Importances(t *testing.T) {
	c := sharedContext(t)
	rows := Table4(c, 30)
	if len(rows) == 0 {
		t.Fatal("no importances")
	}
	if len(rows) > 30 {
		t.Errorf("Table 4 returned %d rows, want <= 30", len(rows))
	}
	// The paper's Table 4 is dominated by container-CPU-derived features;
	// at least a third of our top list should involve C-CPU.
	hits := 0
	for _, r := range rows {
		if strings.Contains(r.Name, "C-CPU") {
			hits++
		}
	}
	if hits < len(rows)/3 {
		t.Errorf("only %d/%d top features involve C-CPU (paper: nearly all)", hits, len(rows))
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	c := sharedContext(t)
	var buf bytes.Buffer
	PrintTable1(&buf, Table1Summary(c))
	PrintTable4(&buf, Table4(c, 10))
	fig, err := Figure2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure2(&buf, fig, false)
	if buf.Len() == 0 {
		t.Fatal("printers produced nothing")
	}
	for _, frag := range []string{"Table 1", "Table 4", "Figure 2", "knee"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestScalePresets(t *testing.T) {
	s, f := Small(), Full()
	if s.TrainDuration >= f.TrainDuration {
		t.Error("small preset should be shorter than full")
	}
	if f.Trees != 250 || f.MinSamplesLeaf != 20 {
		t.Error("full preset must use the paper's forest (250 trees, 20/leaf)")
	}
	if f.SockshopScale != 1.0 {
		t.Error("full preset must use the paper's 6000-second Sockshop schedule")
	}
}

func TestEngineeredTrainingSubsampling(t *testing.T) {
	c := sharedContext(t)
	full, yFull, gFull, err := engineeredTraining(c, 0)
	if err != nil {
		t.Fatalf("engineeredTraining: %v", err)
	}
	if len(full) != len(yFull) || len(full) != len(gFull) {
		t.Fatal("misaligned outputs")
	}
	if len(full) != len(c.Report.Dataset.Samples) {
		t.Errorf("full pass returned %d rows for %d samples", len(full), len(c.Report.Dataset.Samples))
	}
	sub, ySub, gSub, err := engineeredTraining(c, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) > 520 || len(sub) < 300 {
		t.Errorf("subsample size %d, want ≈500", len(sub))
	}
	if len(sub) != len(ySub) || len(sub) != len(gSub) {
		t.Fatal("misaligned subsample outputs")
	}
	// Strided subsampling must retain samples from many runs (grouped CV
	// needs at least 5 groups).
	groups := map[int]bool{}
	for _, g := range gSub {
		groups[g] = true
	}
	if len(groups) < 5 {
		t.Errorf("subsample covers %d runs, want >= 5", len(groups))
	}
}
