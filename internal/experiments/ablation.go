package experiments

import (
	"fmt"
	"io"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/features"
	"monitorless/internal/ml/score"
	"monitorless/internal/ml/tree"
	"monitorless/internal/parallel"
)

// AblationRow reports one pipeline/model variant of the ablation study:
// how each §3.3 design choice contributes to the transfer quality the
// paper demonstrates.
type AblationRow struct {
	// Name labels the variant.
	Name string
	// Features is the engineered feature count.
	Features int
	// TrainTime is the end-to-end fit cost.
	TrainTime time.Duration
	// ElggF1 / TeaStoreF1 are the lagged F1₂ scores on the two
	// evaluation applications; ElggFN / TeaStoreFN the false negatives.
	ElggF1, TeaStoreF1 float64
	ElggFN, TeaStoreFN int
}

// ablationVariant describes one configuration mutation.
type ablationVariant struct {
	name   string
	mutate func(cfg *core.TrainConfig)
}

// Ablation retrains the monitorless model under systematic configuration
// mutations and scores each variant on the Elgg and TeaStore runs. The
// "full" row is the paper's configuration and serves as the reference.
// Variants retrain concurrently on the shared pool — each fits its own
// model from the (read-only) shared corpus — and rows return in variant
// order; only the TrainTime column varies with pool contention.
func Ablation(ctx *Context, elgg, tea *EvalData) ([]AblationRow, error) {
	variants := []ablationVariant{
		{"full (paper)", func(*core.TrainConfig) {}},
		{"threshold 0.5", func(c *core.TrainConfig) { c.Threshold = 0.5 }},
		{"no normalization", func(c *core.TrainConfig) { c.Pipeline.Normalize = false }},
		{"no time features", func(c *core.TrainConfig) { c.Pipeline.TimeFeatures = false }},
		{"no products", func(c *core.TrainConfig) { c.Pipeline.Products = false }},
		{"PCA second reduction", func(c *core.TrainConfig) { c.Pipeline.Reduce2 = features.ReducePCA }},
		{"no second reduction", func(c *core.TrainConfig) { c.Pipeline.Reduce2 = features.ReduceNone }},
		{"gini criterion", func(c *core.TrainConfig) { c.Forest.Criterion = tree.Gini }},
		{"25 trees", func(c *core.TrainConfig) { c.Forest.NumTrees = 25 }},
	}

	return parallel.Map(len(variants), func(vi int) (AblationRow, error) {
		v := variants[vi]
		cfg := ctx.Scale.TrainConfig()
		v.mutate(&cfg)
		start := time.Now()
		m, err := core.Train(ctx.Report.Dataset, cfg)
		if err != nil {
			return AblationRow{}, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		trainTime := time.Since(start)

		scoreOn := func(data *EvalData) (score.Confusion, error) {
			pred, _, err := data.ModelPredictions(m)
			if err != nil {
				return score.Confusion{}, err
			}
			return score.CountLagged(pred, data.Truth, Lag)
		}
		ec, err := scoreOn(elgg)
		if err != nil {
			return AblationRow{}, fmt.Errorf("experiments: ablation %q elgg: %w", v.name, err)
		}
		tc, err := scoreOn(tea)
		if err != nil {
			return AblationRow{}, fmt.Errorf("experiments: ablation %q teastore: %w", v.name, err)
		}
		return AblationRow{
			Name:       v.name,
			Features:   m.Pipeline.NumOutputs(),
			TrainTime:  trainTime,
			ElggF1:     ec.F1(),
			ElggFN:     ec.FN,
			TeaStoreF1: tc.F1(),
			TeaStoreFN: tc.FN,
		}, nil
	})
}

// PrintAblation renders the ablation table.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation: contribution of each design choice (F1_2 / FN_2)")
	fmt.Fprintf(w, "  %-22s %9s %12s %12s %8s %12s %8s\n",
		"Variant", "Features", "Train", "Elgg F1_2", "FN_2", "TeaStore F1_2", "FN_2")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %9d %12s %12.3f %8d %12.3f %8d\n",
			r.Name, r.Features, r.TrainTime.Round(time.Millisecond),
			r.ElggF1, r.ElggFN, r.TeaStoreF1, r.TeaStoreFN)
	}
}
