package experiments

import (
	"fmt"
	"sort"

	"monitorless/internal/apps"
	"monitorless/internal/cluster"
	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/label"
	"monitorless/internal/ml"
	"monitorless/internal/ml/score"
	"monitorless/internal/pcp"
	"monitorless/internal/workload"
)

// BuildTarget constructs a fresh engine and the target application under
// the given load (interference apps, if any, are wired inside).
type BuildTarget func(load workload.Pattern) (*apps.Engine, *apps.App, error)

// EvalData is one evaluation run's raw material: per-instance metric
// series, ground-truth labels, and the utilization series the threshold
// baselines consume.
type EvalData struct {
	// Raw holds one features.Run per instance (run ID = instance index),
	// rows aligned across instances tick by tick.
	Raw *features.Table
	// InstIDs maps run ID → container ID.
	InstIDs []string
	// ServiceOf maps container ID → service name.
	ServiceOf map[string]string
	// Truth is the per-tick application saturation label.
	Truth []int
	// Loads / RTs are the per-tick offered load and end-to-end RT.
	Loads, RTs []float64
	// Times records the simulation second of each row.
	Times []int
	// CPUUtil / MemUtil are per-instance utilization series (percent).
	CPUUtil, MemUtil map[string][]float64
	// Threshold is the ramp-discovered labeler.
	Threshold label.Labeler
}

// CollectOptions configures an evaluation run.
type CollectOptions struct {
	// MaxRate bounds the threshold-discovery ramp.
	MaxRate float64
	// Duration is the measured seconds; RampSeconds sizes the ramp.
	Duration, RampSeconds int
	// Record filters which ticks are kept (nil = all after warmup).
	Record func(t int) bool
	// Warmup skips leading ticks (default 5).
	Warmup int
	// Seed drives the metric collector.
	Seed int64
}

// CollectEval runs the §4 evaluation protocol: discover the application's
// saturation threshold with a linear ramp, then run the real workload and
// record per-instance platform vectors plus ground-truth labels.
func CollectEval(build BuildTarget, load workload.Pattern, opt CollectOptions) (*EvalData, error) {
	if opt.Warmup <= 0 {
		opt.Warmup = 5
	}
	if opt.RampSeconds <= 0 {
		opt.RampSeconds = 300
	}
	lab, err := dataset.ThresholdFromRamp(func(l workload.Pattern) (*apps.Engine, *apps.App, error) {
		return build(l)
	}, opt.MaxRate, opt.RampSeconds)
	if err != nil {
		return nil, fmt.Errorf("experiments: ramp: %w", err)
	}

	eng, target, err := build(load)
	if err != nil {
		return nil, fmt.Errorf("experiments: build: %w", err)
	}
	cat := pcp.DefaultCatalog()
	agent := pcp.NewAgent(pcp.NewCollector(cat, opt.Seed))

	// Fixed instance set, sorted for determinism.
	var ids []string
	serviceOf := map[string]string{}
	for _, s := range target.Services() {
		for _, inst := range s.Instances() {
			ids = append(ids, inst.Ctr.ID)
			serviceOf[inst.Ctr.ID] = s.Name
		}
	}
	sort.Strings(ids)

	data := &EvalData{
		Raw:       &features.Table{Cols: cat.FrameSchema()},
		InstIDs:   ids,
		ServiceOf: serviceOf,
		CPUUtil:   map[string][]float64{},
		MemUtil:   map[string][]float64{},
		Threshold: lab,
	}
	for i := range ids {
		data.Raw.Runs = append(data.Raw.Runs, features.Run{ID: i})
	}

	// Resolve each recorded ID to its container once: the per-tick lookup
	// then goes through the agent's slot index instead of a string map.
	ctrOf := make([]*cluster.Container, len(ids))
	for _, s := range target.Services() {
		for _, inst := range s.Instances() {
			for i, id := range ids {
				if id == inst.Ctr.ID {
					ctrOf[i] = inst.Ctr
				}
			}
		}
	}

	cpuIdx := cat.NumHost() + cat.ContainerIndex("C-CPU-U")
	memIdx := cat.NumHost() + cat.ContainerIndex("S-MEM-U")
	for t := 0; t < opt.Duration; t++ {
		eng.Tick()
		ts, ok := agent.ObserveTick(eng)
		if !ok || t < opt.Warmup {
			continue
		}
		if opt.Record != nil && !opt.Record(t) {
			continue
		}
		complete := true
		for _, ctr := range ctrOf {
			if ts.Index(ctr) < 0 {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		// The threshold baselines consume the *monitored* relative
		// utilizations (C-CPU-U, S-MEM-U), exactly what a production
		// threshold rule would read — measurement noise included. The
		// agent's slab is reused next tick, so retained rows are copies.
		for i, id := range ids {
			src := ts.Vector(ts.Index(ctrOf[i]))
			vec := make([]float64, len(src))
			copy(vec, src)
			data.Raw.Runs[i].Rows = append(data.Raw.Runs[i].Rows, vec)
			data.CPUUtil[id] = append(data.CPUUtil[id], vec[cpuIdx])
			data.MemUtil[id] = append(data.MemUtil[id], vec[memIdx])
		}
		data.Truth = append(data.Truth, lab.Label(target.KPI.Throughput))
		data.Loads = append(data.Loads, target.KPI.Offered)
		data.RTs = append(data.RTs, target.KPI.AvgRT)
		data.Times = append(data.Times, t)
	}
	if len(data.Truth) == 0 {
		return nil, fmt.Errorf("experiments: evaluation recorded no samples")
	}
	return data, nil
}

// Samples returns the recorded tick count.
func (e *EvalData) Samples() int { return len(e.Truth) }

// SaturatedFraction is the positive share of the ground truth.
func (e *EvalData) SaturatedFraction() float64 {
	n := 0
	for _, y := range e.Truth {
		n += y
	}
	return float64(n) / float64(len(e.Truth))
}

// ModelPredictions classifies every instance with the monitorless model
// and aggregates per tick with the paper's logical OR. It returns the
// aggregated series and the per-instance prediction series.
func (e *EvalData) ModelPredictions(m *core.Model) (appPred []int, perInst map[string][]int, err error) {
	preds, _, err := m.PredictTable(e.Raw)
	if err != nil {
		return nil, nil, err
	}
	return e.aggregate(preds)
}

// ClassifierPredictions runs an arbitrary classifier over the engineered
// features of a fitted pipeline (the Table 3 comparison path). The
// engineered frame is walked span by span through one gather buffer.
func (e *EvalData) ClassifierPredictions(pipe *features.Pipeline, clf ml.Classifier) ([]int, error) {
	engineered, err := pipe.TransformFrame(e.Raw.Frame())
	if err != nil {
		return nil, err
	}
	preds := map[int][]int{}
	buf := make([]float64, engineered.NumCols())
	for _, sp := range engineered.Spans() {
		ps := make([]int, sp.End-sp.Start)
		for i := sp.Start; i < sp.End; i++ {
			buf = engineered.Row(i, buf)
			ps[i-sp.Start] = clf.Predict(buf)
		}
		preds[sp.ID] = ps
	}
	app, _, err := e.aggregate(preds)
	return app, err
}

// aggregate ORs per-instance series into the application series.
func (e *EvalData) aggregate(preds map[int][]int) ([]int, map[string][]int, error) {
	n := len(e.Truth)
	app := make([]int, n)
	perInst := make(map[string][]int, len(e.InstIDs))
	for i, id := range e.InstIDs {
		series := preds[i]
		if len(series) != n {
			return nil, nil, fmt.Errorf("experiments: instance %s has %d predictions for %d ticks", id, len(series), n)
		}
		perInst[id] = series
		for t, p := range series {
			if p == 1 {
				app[t] = 1
			}
		}
	}
	return app, perInst, nil
}

// BaselineMode selects a threshold baseline.
type BaselineMode int

// Baseline modes from §4: single-resource thresholds and their
// disjunctive/conjunctive combinations.
const (
	BaselineCPU BaselineMode = iota
	BaselineMem
	BaselineCPUOrMem
	BaselineCPUAndMem
)

// String implements fmt.Stringer.
func (b BaselineMode) String() string {
	switch b {
	case BaselineCPU:
		return "CPU"
	case BaselineMem:
		return "MEM"
	case BaselineCPUOrMem:
		return "CPU-OR-MEM"
	case BaselineCPUAndMem:
		return "CPU-AND-MEM"
	default:
		return fmt.Sprintf("BaselineMode(%d)", int(b))
	}
}

// ThresholdPredictions evaluates a static-threshold rule: an instance is
// saturated when its utilization crosses the threshold(s); the app is the
// OR over instances.
func (e *EvalData) ThresholdPredictions(mode BaselineMode, cpuThr, memThr float64) []int {
	n := len(e.Truth)
	out := make([]int, n)
	for _, id := range e.InstIDs {
		cpu := e.CPUUtil[id]
		mem := e.MemUtil[id]
		for t := 0; t < n; t++ {
			fire := false
			switch mode {
			case BaselineCPU:
				fire = cpu[t] >= cpuThr
			case BaselineMem:
				fire = mem[t] >= memThr
			case BaselineCPUOrMem:
				fire = cpu[t] >= cpuThr || mem[t] >= memThr
			case BaselineCPUAndMem:
				fire = cpu[t] >= cpuThr && mem[t] >= memThr
			}
			if fire {
				out[t] = 1
			}
		}
	}
	return out
}

// OptimizedBaseline searches the single-resource threshold that maximizes
// F1₂ against the ground truth — the paper's deliberately unfair
// a-posteriori tuning ("the best possible outcome for threshold-based
// approaches"). Only BaselineCPU and BaselineMem are searchable; the
// paper's OR/AND combos reuse the single-resource optima (see
// CombineBaseline).
func (e *EvalData) OptimizedBaseline(mode BaselineMode, lag int) (thr float64, conf score.Confusion) {
	best := score.Confusion{}
	bestF1 := -1.0
	// CPU rules are tuned at 1% granularity (the paper reports 97%, 99%);
	// memory rules at the 5% granularity an operator would configure —
	// finer steps only chase measurement-noise tails around the static
	// JVM heap level.
	step := 1.0
	if mode == BaselineMem {
		step = 5.0
	}
	for t := step; t <= 100; t += step {
		var pred []int
		switch mode {
		case BaselineCPU:
			pred = e.ThresholdPredictions(BaselineCPU, t, 0)
		case BaselineMem:
			pred = e.ThresholdPredictions(BaselineMem, 0, t)
		default:
			return 0, best
		}
		c, err := score.CountLagged(pred, e.Truth, lag)
		if err != nil {
			continue
		}
		// Ties break toward the higher threshold (the paper reports the
		// upper end of flat optima, e.g. "MEM (90%)" when every lower
		// threshold fires identically).
		if f := c.F1(); f >= bestF1 {
			bestF1 = f
			best = c
			thr = t
		}
	}
	return thr, best
}

// CombineBaseline evaluates the OR/AND combination at the given (already
// optimized) single-resource thresholds, as the paper constructs them.
func (e *EvalData) CombineBaseline(mode BaselineMode, cpuThr, memThr float64, lag int) (score.Confusion, error) {
	pred := e.ThresholdPredictions(mode, cpuThr, memThr)
	return score.CountLagged(pred, e.Truth, lag)
}

// --- Standard application builders (§4 setups). -----------------------

// BuildElgg returns the §4.1 three-tier builder: Elgg + InnoDB + Memcache
// on one training-class host.
func BuildElgg() BuildTarget {
	return func(load workload.Pattern) (*apps.Engine, *apps.App, error) {
		c, err := cluster.New(apps.TrainingNode("host"))
		if err != nil {
			return nil, nil, err
		}
		app, err := apps.NewElgg(c, "host", load)
		if err != nil {
			return nil, nil, err
		}
		eng, err := apps.NewEngine(c, app)
		if err != nil {
			return nil, nil, err
		}
		return eng, app, nil
	}
}

// BuildTeaStore returns the §4.2 multi-tenant builder with TeaStore as the
// target and Sockshop as co-located interference.
func BuildTeaStore(interferenceRate float64, seed int64) BuildTarget {
	return func(load workload.Pattern) (*apps.Engine, *apps.App, error) {
		c, err := cluster.New(apps.EvalNodes()...)
		if err != nil {
			return nil, nil, err
		}
		tea, err := apps.NewTeaStore(c, load)
		if err != nil {
			return nil, nil, err
		}
		shop, err := apps.NewSockshop(c, workload.NewJittered(workload.Constant{Rate: interferenceRate}, 0.15, seed))
		if err != nil {
			return nil, nil, err
		}
		eng, err := apps.NewEngine(c, tea, shop)
		if err != nil {
			return nil, nil, err
		}
		return eng, tea, nil
	}
}

// BuildSockshop returns the §4.2.3 builder with Sockshop as the target and
// TeaStore as interference.
func BuildSockshop(interferenceRate float64, seed int64) BuildTarget {
	return func(load workload.Pattern) (*apps.Engine, *apps.App, error) {
		c, err := cluster.New(apps.EvalNodes()...)
		if err != nil {
			return nil, nil, err
		}
		shop, err := apps.NewSockshop(c, load)
		if err != nil {
			return nil, nil, err
		}
		tea, err := apps.NewTeaStore(c, workload.NewJittered(workload.Constant{Rate: interferenceRate}, 0.15, seed))
		if err != nil {
			return nil, nil, err
		}
		eng, err := apps.NewEngine(c, shop, tea)
		if err != nil {
			return nil, nil, err
		}
		return eng, shop, nil
	}
}
