// Package experiments regenerates every table and figure of the paper's
// evaluation: the Table 1 training corpus, the Table 2 hyper-parameter
// grids, the Table 3 algorithm comparison, the Table 4 feature
// importances, the Table 5/6/8 evaluations on Elgg, TeaStore and Sockshop,
// the Figure 2 labeling walk-through, the Figure 3 prediction time series,
// and the Table 7 autoscaling study. Everything is driven by a Scale so
// the full suite runs at laptop size (benches) or paper size (cmd).
package experiments

import (
	"fmt"
	"os"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/frame"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
	"monitorless/internal/parallel"
)

// Scale sizes every experiment.
type Scale struct {
	// Name labels the preset.
	Name string
	// TrainDuration / RampSeconds size each Table 1 run.
	TrainDuration, RampSeconds int
	// ElggDuration / TeaStoreDuration size the evaluation runs; the
	// Sockshop run is controlled by SockshopScale (1.0 = the paper's
	// 6000-second triple-Locust schedule with 3×999 recorded samples).
	ElggDuration, TeaStoreDuration int
	SockshopScale                  float64
	// Trees / MinSamplesLeaf configure the final forest.
	Trees, MinSamplesLeaf int
	// FilterTopK / FilterTrees configure the reduction steps.
	FilterTopK, FilterTrees int
	// GridLite shrinks the Table 2 grids to the paper's chosen value
	// plus one alternative per axis.
	GridLite bool
	// AutoscaleDuration sizes Table 7.
	AutoscaleDuration int
	// Splitter selects the forest's split search: tree.Best (the exact
	// parity reference, the zero value) or tree.Hist (histogram-binned
	// training, the fast retraining path).
	Splitter tree.Splitter
	// Bins caps per-column bins for the Hist splitter; 0 = 256.
	Bins int
	// Seed drives all randomness.
	Seed int64
}

// Small returns the laptop-scale preset used by tests and benches.
func Small() Scale {
	return Scale{
		Name:              "small",
		TrainDuration:     300,
		RampSeconds:       250,
		ElggDuration:      500,
		TeaStoreDuration:  1000,
		SockshopScale:     0.2,
		Trees:             40,
		MinSamplesLeaf:    20,
		FilterTopK:        30,
		FilterTrees:       20,
		GridLite:          true,
		AutoscaleDuration: 1100,
		Seed:              42,
	}
}

// Full returns the paper-scale preset (25 runs × 900 s training, 250-tree
// forest, full evaluation horizons).
func Full() Scale {
	return Scale{
		Name:              "full",
		TrainDuration:     900,
		RampSeconds:       500,
		ElggDuration:      2456,
		TeaStoreDuration:  7193,
		SockshopScale:     1.0,
		Trees:             250,
		MinSamplesLeaf:    20,
		FilterTopK:        30,
		FilterTrees:       25,
		GridLite:          false,
		AutoscaleDuration: 7193,
		Seed:              42,
	}
}

// TrainConfig derives the monitorless training configuration.
func (s Scale) TrainConfig() core.TrainConfig {
	return core.TrainConfig{
		Pipeline: features.Config{
			Normalize:    true,
			Reduce1:      features.ReduceFilter,
			TimeFeatures: true,
			Products:     true,
			Reduce2:      features.ReduceFilter,
			FilterTopK:   s.FilterTopK,
			FilterTrees:  s.FilterTrees,
			Seed:         s.Seed,
		},
		Forest: forest.Config{
			NumTrees:       s.Trees,
			MinSamplesLeaf: s.MinSamplesLeaf,
			Criterion:      tree.Entropy,
			Splitter:       s.Splitter,
			Bins:           s.Bins,
			Seed:           s.Seed,
		},
		Threshold: 0.4,
	}
}

// Context caches the expensive shared artifacts: the Table 1 corpus and
// the trained monitorless model.
type Context struct {
	Scale  Scale
	Report *dataset.Report
	Model  *core.Model
}

// ForceSpillEnv, when set to a non-empty value, reroutes NewContext's
// training through a disk-spilled chunk-backed copy of the corpus. The
// parity goldens run under it in CI: every table they check must come out
// bit-identical whether the model trained in memory or out of core.
const ForceSpillEnv = "MONITORLESS_FORCE_SPILL"

// NewContext generates the full Table 1 corpus and trains the model.
func NewContext(s Scale) (*Context, error) {
	rep, err := dataset.Generate(dataset.Table1(), dataset.GenOptions{
		Duration:    s.TrainDuration,
		RampSeconds: s.RampSeconds,
		Seed:        s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: training data: %w", err)
	}
	m, err := trainModel(rep, s)
	if err != nil {
		return nil, fmt.Errorf("experiments: train: %w", err)
	}
	return &Context{Scale: s, Report: rep, Model: m}, nil
}

// trainModel fits the monitorless model, out of core when ForceSpillEnv
// is set.
func trainModel(rep *dataset.Report, s Scale) (*core.Model, error) {
	if os.Getenv(ForceSpillEnv) == "" {
		return core.Train(rep.Dataset, s.TrainConfig())
	}
	dir, err := os.MkdirTemp("", "monitorless-spill-*")
	if err != nil {
		return nil, fmt.Errorf("spill dir: %w", err)
	}
	chunked, err := frame.Rechunk(rep.Dataset.Frame(), frame.DefaultChunkRows, dir)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("spill corpus: %w", err)
	}
	defer chunked.Discard()
	return core.TrainFrame(chunked, s.TrainConfig())
}

// EvalSet bundles the evaluation datasets behind Tables 3 and 5–8; unset
// applications stay nil.
type EvalSet struct {
	Elgg, TeaStore, Sockshop *EvalData
}

// CollectEvals collects the requested evaluation runs concurrently on the
// shared pool. Each run builds its own engine and seeded agent, so the
// collected datasets are identical to collecting them one after another.
func CollectEvals(ctx *Context, elgg, teaStore, sockshop bool) (*EvalSet, error) {
	set := &EvalSet{}
	var tasks []func() error
	if elgg {
		tasks = append(tasks, func() error {
			d, err := CollectElgg(ctx)
			set.Elgg = d
			return err
		})
	}
	if teaStore {
		tasks = append(tasks, func() error {
			d, err := CollectTeaStore(ctx)
			set.TeaStore = d
			return err
		})
	}
	if sockshop {
		tasks = append(tasks, func() error {
			d, err := CollectSockshop(ctx)
			set.Sockshop = d
			return err
		})
	}
	if err := parallel.ForEach(len(tasks), func(i int) error { return tasks[i]() }); err != nil {
		return nil, err
	}
	return set, nil
}
