package lifecycle

import (
	"context"
	"fmt"
	"sync"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/frame"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/score"
)

// Policy selects what the lifecycle manager does with a winning
// challenger.
type Policy string

const (
	// PolicyOff disables shadow retraining entirely.
	PolicyOff Policy = "off"
	// PolicyShadow trains and scores challengers but never swaps; the
	// champion/challenger record is observability only.
	PolicyShadow Policy = "shadow"
	// PolicyAuto promotes a winning challenger through the swap callback.
	PolicyAuto Policy = "auto"
)

// ParsePolicy validates a -swap-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyOff, PolicyShadow, PolicyAuto:
		return Policy(s), nil
	}
	return "", fmt.Errorf("lifecycle: unknown swap policy %q (want off, shadow or auto)", s)
}

// Config parameterizes a Manager.
type Config struct {
	// Champion is the currently serving model. The manager trains
	// challengers with the champion forest's own hyper-parameters on the
	// engineered-feature reservoir; the champion's pipeline is shared
	// unchanged, which is what makes a promotion a warm (state-preserving)
	// swap in the serving plane.
	Champion *core.Model
	// Policy is off, shadow or auto (default off).
	Policy Policy
	// ReservoirCap bounds the labeled-sample ring (0 = DefaultReservoirCap).
	ReservoirCap int
	// HoldoutEvery holds out every k-th reservoir slot for champion/
	// challenger comparison (≤1 selects 5, i.e. 20%).
	HoldoutEvery int
	// MinFitSamples skips retraining until the reservoir holds at least
	// this many training rows (0 selects 512).
	MinFitSamples int
	// WinMargin is how much the challenger's holdout F1 must exceed the
	// champion's before it counts as a win (0 = any strict improvement).
	WinMargin float64
	// Seed makes the retrain sequence deterministic; round r uses
	// Seed + r·9973.
	Seed int64
	// Swap promotes a winning challenger (PolicyAuto only). It is the
	// serving plane's atomic hot-swap entry; a non-nil error keeps the
	// old champion.
	Swap func(m *core.Model, trainSamples int, reason string) error
	// Harvest, when non-nil, is called before each retrain round to drain
	// per-shard drift cells into the monitor (so drift context in reports
	// is current).
	Harvest func()
	// OnOutcome, when non-nil, observes each round's outcome: "win",
	// "loss", "skip" or "error" (the serving metrics counters).
	OnOutcome func(outcome string)
}

// ChallengerReport records one shadow-retrain round.
type ChallengerReport struct {
	Round       uint64    `json:"round"`
	At          time.Time `json:"at"`
	TrainRows   int       `json:"train_rows"`
	HoldoutRows int       `json:"holdout_rows"`
	// ChampionF1 / ChallengerF1 are holdout F1 scores at the champion's
	// decision threshold.
	ChampionF1   float64 `json:"champion_f1"`
	ChallengerF1 float64 `json:"challenger_f1"`
	// FitSeconds is the challenger's wall-clock training time (the
	// retrain-latency series in BENCH_drift.json).
	FitSeconds float64 `json:"fit_seconds"`
	Win        bool    `json:"win"`
	Swapped    bool    `json:"swapped"`
	// Skipped carries the skip reason when the round trained nothing.
	Skipped string `json:"skipped,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Outcome classifies the round for the metrics counters.
func (r ChallengerReport) Outcome() string {
	switch {
	case r.Err != "":
		return "error"
	case r.Skipped != "":
		return "skip"
	case r.Win:
		return "win"
	default:
		return "loss"
	}
}

// maxReports bounds the retained round history.
const maxReports = 32

// Manager owns the shadow-retrain loop: reservoir in, challenger
// reports out, champion promotion through the swap callback.
type Manager struct {
	cfg Config

	// Reservoir collects labeled engineered rows; the serving plane's
	// label sink points here.
	Reservoir *Reservoir

	mu       sync.Mutex
	champion *core.Model
	rounds   uint64
	wins     uint64
	losses   uint64
	skips    uint64
	reports  []ChallengerReport
}

// NewManager builds a manager around the serving champion. The champion
// must be a fitted model (its pipeline defines the reservoir schema).
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Champion == nil || cfg.Champion.Forest == nil || cfg.Champion.Pipeline == nil {
		return nil, fmt.Errorf("lifecycle: manager needs a fitted champion model")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyOff
	}
	if cfg.MinFitSamples <= 0 {
		cfg.MinFitSamples = 512
	}
	return &Manager{
		cfg:       cfg,
		Reservoir: NewReservoir(cfg.Champion.EngineeredSchema(), cfg.ReservoirCap),
		champion:  cfg.Champion,
	}, nil
}

// Policy returns the configured promotion policy.
func (mg *Manager) Policy() Policy { return mg.cfg.Policy }

// Champion returns the current champion model.
func (mg *Manager) Champion() *core.Model {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.champion
}

// Status is the /model endpoint's lifecycle snapshot.
type Status struct {
	Policy         Policy             `json:"policy"`
	Rounds         uint64             `json:"rounds"`
	Wins           uint64             `json:"wins"`
	Losses         uint64             `json:"losses"`
	Skips          uint64             `json:"skips"`
	ReservoirRows  int                `json:"reservoir_rows"`
	ReservoirCap   int                `json:"reservoir_cap"`
	ReservoirTotal uint64             `json:"reservoir_total"`
	Reports        []ChallengerReport `json:"reports,omitempty"`
}

// Status snapshots the manager for observability endpoints.
func (mg *Manager) Status() Status {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return Status{
		Policy:         mg.cfg.Policy,
		Rounds:         mg.rounds,
		Wins:           mg.wins,
		Losses:         mg.losses,
		Skips:          mg.skips,
		ReservoirRows:  mg.Reservoir.Len(),
		ReservoirCap:   mg.Reservoir.Cap(),
		ReservoirTotal: mg.Reservoir.Total(),
		Reports:        append([]ChallengerReport(nil), mg.reports...),
	}
}

// Counts returns the win/loss/skip tallies.
func (mg *Manager) Counts() (wins, losses, skips uint64) {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.wins, mg.losses, mg.skips
}

// RetrainOnce runs one shadow-retrain round: snapshot the reservoir, fit
// a challenger forest on the histogram path with the champion's
// hyper-parameters, compare holdout F1 at the champion threshold, and —
// under PolicyAuto — promote a winner through the swap callback. The
// returned report is also appended to the bounded history.
func (mg *Manager) RetrainOnce() ChallengerReport {
	if mg.cfg.Harvest != nil {
		mg.cfg.Harvest()
	}
	mg.mu.Lock()
	mg.rounds++
	round := mg.rounds
	champ := mg.champion
	mg.mu.Unlock()

	rep := ChallengerReport{Round: round, At: time.Now().UTC()}
	fit, trainRows, holdRows := mg.Reservoir.Snapshot(mg.cfg.HoldoutEvery)
	if fit != nil {
		rep.TrainRows, rep.HoldoutRows = len(trainRows), len(holdRows)
	}
	switch {
	case fit == nil:
		rep.Skipped = "reservoir empty"
	case len(trainRows) < mg.cfg.MinFitSamples:
		rep.Skipped = fmt.Sprintf("reservoir has %d training rows, need %d", len(trainRows), mg.cfg.MinFitSamples)
	case len(holdRows) == 0:
		rep.Skipped = "empty holdout slice"
	case !hasBothClasses(fit.Labels(), trainRows):
		rep.Skipped = "training rows are single-class"
	}
	if rep.Skipped != "" {
		return mg.finish(rep)
	}

	truth := make([]int, len(holdRows))
	for p, i := range holdRows {
		truth[p] = fit.Labels()[i]
	}
	champF1, err := holdoutF1(champ.Forest, champ.Threshold, fit, holdRows, truth)
	if err != nil {
		rep.Err = err.Error()
		return mg.finish(rep)
	}
	rep.ChampionF1 = champF1

	start := time.Now()
	challenger, err := forest.Retrain(champ.Forest, fit, nil, trainRows, mg.cfg.Seed+int64(round)*9973)
	rep.FitSeconds = time.Since(start).Seconds()
	if err != nil {
		rep.Err = err.Error()
		return mg.finish(rep)
	}
	chalF1, err := holdoutF1(challenger, champ.Threshold, fit, holdRows, truth)
	if err != nil {
		rep.Err = err.Error()
		return mg.finish(rep)
	}
	rep.ChallengerF1 = chalF1
	rep.Win = chalF1 > champF1+mg.cfg.WinMargin

	if rep.Win && mg.cfg.Policy == PolicyAuto && mg.cfg.Swap != nil {
		// The promoted model shares the champion's pipeline pointer — the
		// serving plane recognizes that as a warm swap and preserves
		// per-instance stream state. The raw-frame fingerprint stays the
		// champion's: the reservoir holds engineered rows, so the raw
		// training distribution reference is unchanged.
		promoted := &core.Model{
			Pipeline:           champ.Pipeline,
			Forest:             challenger,
			Threshold:          champ.Threshold,
			RawSchema:          champ.RawSchema,
			Fingerprint:        champ.Fingerprint,
			TrainSamples:       len(trainRows),
			TrainSaturatedFrac: saturatedFrac(fit.Labels(), trainRows),
		}
		if err := mg.cfg.Swap(promoted, len(trainRows), fmt.Sprintf("challenger round %d: F1 %.4f > %.4f", round, chalF1, champF1)); err != nil {
			rep.Err = fmt.Sprintf("swap refused: %v", err)
		} else {
			rep.Swapped = true
			mg.mu.Lock()
			mg.champion = promoted
			mg.mu.Unlock()
		}
	}
	return mg.finish(rep)
}

// finish records the report, updates tallies and fires OnOutcome.
func (mg *Manager) finish(rep ChallengerReport) ChallengerReport {
	mg.mu.Lock()
	switch rep.Outcome() {
	case "win":
		mg.wins++
	case "loss":
		mg.losses++
	case "skip", "error":
		mg.skips++
	}
	mg.reports = append(mg.reports, rep)
	if len(mg.reports) > maxReports {
		mg.reports = mg.reports[len(mg.reports)-maxReports:]
	}
	mg.mu.Unlock()
	if mg.cfg.OnOutcome != nil {
		mg.cfg.OnOutcome(rep.Outcome())
	}
	return rep
}

// Run drives RetrainOnce on a fixed interval until ctx is cancelled.
// PolicyOff returns immediately.
func (mg *Manager) Run(ctx context.Context, interval time.Duration) {
	if mg.cfg.Policy == PolicyOff || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			mg.RetrainOnce()
		}
	}
}

// holdoutF1 scores a forest on the holdout rows at the given threshold.
func holdoutF1(f *forest.Forest, threshold float64, fit *frame.Frame, holdRows []int, truth []int) (float64, error) {
	probs := f.PredictProbaFrameRows(fit, holdRows)
	preds := make([]int, len(probs))
	for i, p := range probs {
		if p >= threshold {
			preds[i] = 1
		}
	}
	c, err := score.Count(preds, truth)
	if err != nil {
		return 0, err
	}
	return c.F1(), nil
}

// hasBothClasses reports whether the listed rows contain both labels.
func hasBothClasses(labels []int, rows []int) bool {
	var seen0, seen1 bool
	for _, i := range rows {
		if labels[i] == 1 {
			seen1 = true
		} else {
			seen0 = true
		}
		if seen0 && seen1 {
			return true
		}
	}
	return false
}

// saturatedFrac is the positive-label fraction of the listed rows.
func saturatedFrac(labels []int, rows []int) float64 {
	if len(rows) == 0 {
		return 0
	}
	n1 := 0
	for _, i := range rows {
		n1 += labels[i]
	}
	return float64(n1) / float64(len(rows))
}
