package lifecycle

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/frame"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
)

// ---- shared fixtures -------------------------------------------------

var (
	testModelOnce sync.Once
	testModel     *core.Model
	testDS        *dataset.Dataset
	testModelErr  error
)

// sharedModel trains (once per test binary) a compact model on a few
// Table 1 runs — the same recipe the core tests use.
func sharedModel(t testing.TB) (*core.Model, *dataset.Dataset) {
	t.Helper()
	testModelOnce.Do(func() {
		all := dataset.Table1()
		var cfgs []dataset.RunConfig
		for _, c := range all {
			switch c.ID {
			case 1, 6, 8, 10, 22, 23:
				cfgs = append(cfgs, c)
			}
		}
		rep, err := dataset.Generate(cfgs, dataset.GenOptions{Duration: 350, RampSeconds: 250, Seed: 3})
		if err != nil {
			testModelErr = err
			return
		}
		testDS = rep.Dataset
		testModel, testModelErr = core.Train(testDS, core.TrainConfig{
			Pipeline: features.Config{
				Normalize:    true,
				Reduce1:      features.ReduceFilter,
				TimeFeatures: true,
				Products:     true,
				Reduce2:      features.ReduceFilter,
				FilterTopK:   30,
				FilterTrees:  20,
				Seed:         7,
			},
			Forest: forest.Config{
				NumTrees:       30,
				MinSamplesLeaf: 10,
				Criterion:      tree.Entropy,
				Seed:           7,
			},
			Threshold: 0.4,
		})
	})
	if testModelErr != nil {
		t.Fatalf("shared model: %v", testModelErr)
	}
	return testModel, testDS
}

// syntheticFingerprint builds a reference sketch from gaussian columns.
func syntheticFingerprint(t testing.TB, cols, rows int) (*frame.Fingerprint, *frame.Frame) {
	t.Helper()
	schema := make(frame.Schema, cols)
	for j := range schema {
		schema[j] = frame.Col{Name: "m" + string(rune('a'+j))}
	}
	fr := frame.NewDense(schema, rows, nil, nil)
	rng := rand.New(rand.NewSource(11))
	for j := 0; j < cols; j++ {
		col := fr.Col(j)
		for i := range col {
			col[i] = float64(j+1)*10 + rng.NormFloat64()*float64(j+1)
		}
	}
	return frame.FingerprintFrame(fr, 0), fr
}

// ---- drift -----------------------------------------------------------

func TestMonitorNoDriftOnTrainingDistribution(t *testing.T) {
	const cols, rows = 4, 4000
	fp, fr := syntheticFingerprint(t, cols, rows)

	cell := NewCell()
	mon := NewMonitor(fp, rows)
	vec := make([]float64, cols)
	for i := 0; i < rows; i++ {
		cell.Observe(fp, "app", fr.Row(i, vec))
	}
	mon.Absorb(cell)

	scores := mon.Scores()
	if len(scores) != 1 {
		t.Fatalf("got %d scored apps, want 1", len(scores))
	}
	d := scores[0]
	if d.App != "app" || d.Samples != rows || d.Window != 1 {
		t.Fatalf("score header wrong: %+v", d)
	}
	// The window IS the training sample, so PSI and shift are ≈ 0 (PSI not
	// exactly 0 because of the epsilon floor on empty tail bins).
	if d.MaxPSI > 0.02 {
		t.Errorf("MaxPSI = %v on the training distribution itself, want ≈ 0", d.MaxPSI)
	}
	if d.MaxShift > 0.01 {
		t.Errorf("MaxShift = %v on the training distribution itself, want ≈ 0", d.MaxShift)
	}
	if mon.Windows() != 1 {
		t.Errorf("Windows = %d, want 1", mon.Windows())
	}
}

func TestMonitorDetectsShiftedDistribution(t *testing.T) {
	const cols, rows = 4, 4000
	fp, fr := syntheticFingerprint(t, cols, rows)

	cell := NewCell()
	mon := NewMonitor(fp, rows)
	vec := make([]float64, cols)
	for i := 0; i < rows; i++ {
		vec = fr.Row(i, vec)
		vec[2] += 15 // column 2 has std ≈ 3, so this is a ~5σ mean shift
		cell.Observe(fp, "app", vec)
	}
	mon.Absorb(cell)

	d := mon.Scores()[0]
	if d.MaxShift < 3 || d.MaxShiftFeature != "mc" {
		t.Errorf("shift not attributed: MaxShift=%v feature=%q", d.MaxShift, d.MaxShiftFeature)
	}
	if d.MaxPSI < 0.5 || d.MaxPSIFeature != "mc" {
		t.Errorf("PSI not attributed: MaxPSI=%v feature=%q", d.MaxPSI, d.MaxPSIFeature)
	}
	if len(d.Top) == 0 || d.Top[0].Name != "mc" {
		t.Errorf("top offender list wrong: %+v", d.Top)
	}
	if mon.MaxPSI() != d.MaxPSI {
		t.Errorf("Monitor.MaxPSI = %v, want %v", mon.MaxPSI(), d.MaxPSI)
	}
}

// TestMonitorShardMergeMatchesSingleCell pins the shard-merge algebra:
// samples split across many cells score identically to one cell seeing
// the whole stream.
func TestMonitorShardMergeMatchesSingleCell(t *testing.T) {
	const cols, rows = 3, 3000
	fp, fr := syntheticFingerprint(t, cols, rows)

	single := NewMonitor(fp, rows)
	one := NewCell()
	vec := make([]float64, cols)
	for i := 0; i < rows; i++ {
		vec = fr.Row(i, vec)
		vec[0] += 2
		one.Observe(fp, "app", vec)
	}
	single.Absorb(one)

	sharded := NewMonitor(fp, rows)
	cells := []*Cell{NewCell(), NewCell(), NewCell()}
	for i := 0; i < rows; i++ {
		vec = fr.Row(i, vec)
		vec[0] += 2
		cells[i%3].Observe(fp, "app", vec)
		if i%17 == 0 { // interleave partial scrapes
			sharded.Absorb(cells[i%3])
		}
	}
	for _, c := range cells {
		sharded.Absorb(c)
	}

	a, b := single.Scores()[0], sharded.Scores()[0]
	if a.Samples != b.Samples || a.MaxPSIFeature != b.MaxPSIFeature {
		t.Fatalf("merged window differs: %+v vs %+v", a, b)
	}
	if a.MaxPSI != b.MaxPSI { // PSI is bin-count based: exactly equal
		t.Errorf("merged PSI %v != single-cell PSI %v", b.MaxPSI, a.MaxPSI)
	}
	if math.Abs(a.MaxShift-b.MaxShift) > 1e-9 {
		t.Errorf("merged shift %v != single-cell shift %v", b.MaxShift, a.MaxShift)
	}
}

func TestMonitorResetOnNewFingerprint(t *testing.T) {
	fp1, fr := syntheticFingerprint(t, 2, 500)
	fp2 := frame.FingerprintFrame(fr, 5)

	mon := NewMonitor(fp1, 100)
	cell := NewCell()
	vec := make([]float64, 2)
	for i := 0; i < 100; i++ {
		cell.Observe(fp1, "app", fr.Row(i, vec))
	}
	mon.Absorb(cell)
	if len(mon.Scores()) != 1 {
		t.Fatal("window did not complete")
	}

	mon.Reset(fp2)
	if len(mon.Scores()) != 0 || mon.Fingerprint() != fp2 {
		t.Fatal("Reset did not clear scores and rebind")
	}
	// A cell still bound to the old fingerprint is discarded, not merged.
	for i := 0; i < 100; i++ {
		cell.Observe(fp1, "app", fr.Row(i, vec))
	}
	mon.Absorb(cell)
	if len(mon.Scores()) != 0 {
		t.Fatal("stale-fingerprint cell was merged into the new monitor")
	}
}

func TestCellObserveAllocs(t *testing.T) {
	fp, fr := syntheticFingerprint(t, 6, 200)
	cell := NewCell()
	vec := make([]float64, 6)
	cell.Observe(fp, "app", fr.Row(0, vec)) // bind + create the app accum
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		vec = fr.Row(i%200, vec)
		cell.Observe(fp, "app", vec)
		i++
	})
	if allocs != 0 {
		t.Errorf("Cell.Observe allocates %.1f per sample at steady state, want 0", allocs)
	}
}

// ---- reservoir -------------------------------------------------------

func TestReservoirRingAndSnapshotSplit(t *testing.T) {
	schema := frame.Schema{{Name: "f0"}, {Name: "f1"}}
	r := NewReservoir(schema, 8)
	for i := 0; i < 11; i++ { // wraps: slots 0..2 overwritten by 8..10
		r.Add([]float64{float64(i), float64(-i)}, i%2)
	}
	if r.Len() != 8 || r.Total() != 11 || r.Cap() != 8 {
		t.Fatalf("ring accounting wrong: len=%d total=%d cap=%d", r.Len(), r.Total(), r.Cap())
	}

	fit, trainRows, holdRows := r.Snapshot(4)
	if fit.Rows() != 8 {
		t.Fatalf("snapshot rows = %d, want 8", fit.Rows())
	}
	if len(trainRows)+len(holdRows) != 8 || len(holdRows) != 2 {
		t.Fatalf("split sizes: train=%d hold=%d", len(trainRows), len(holdRows))
	}
	for _, i := range holdRows {
		if i%4 != 0 {
			t.Errorf("holdout row %d not on the holdout stride", i)
		}
	}
	// Ring semantics: slot s holds sample s for s ≥ 3, sample s+8 for s < 3.
	for s := 0; s < 8; s++ {
		want := float64(s)
		if s < 3 {
			want = float64(s + 8)
		}
		if got := fit.At(s, 0); got != want {
			t.Errorf("slot %d = %v, want %v", s, got, want)
		}
		if fit.Labels()[s] != int(want)%2 {
			t.Errorf("slot %d label = %d, want %d", s, fit.Labels()[s], int(want)%2)
		}
	}

	// The snapshot is decoupled: later Adds must not mutate it.
	r.Add([]float64{99, 99}, 1)
	if fit.At(3, 0) == 99 {
		t.Error("snapshot aliases the live ring")
	}
}

func TestReservoirRejectsWidthMismatch(t *testing.T) {
	r := NewReservoir(frame.Schema{{Name: "f0"}}, 4)
	r.Add([]float64{1, 2}, 1)
	if r.Total() != 0 {
		t.Error("mismatched-width row was accepted")
	}
	if fit, _, _ := r.Snapshot(5); fit != nil {
		t.Error("empty reservoir snapshot not nil")
	}
}

func TestReservoirAddAllocs(t *testing.T) {
	r := NewReservoir(frame.Schema{{Name: "f0"}, {Name: "f1"}, {Name: "f2"}}, 64)
	vec := []float64{1, 2, 3}
	allocs := testing.AllocsPerRun(500, func() { r.Add(vec, 1) })
	if allocs != 0 {
		t.Errorf("Reservoir.Add allocates %.1f per row, want 0", allocs)
	}
}

// ---- manager ---------------------------------------------------------

// engineeredRows materializes the engineered training frame (with labels)
// the serving plane would feed the reservoir.
func engineeredRows(t testing.TB, m *core.Model, ds *dataset.Dataset) *frame.Frame {
	t.Helper()
	eng, err := m.Pipeline.TransformFrame(ds.Frame())
	if err != nil {
		t.Fatalf("TransformFrame: %v", err)
	}
	if eng.Labels() == nil {
		t.Fatal("engineered frame lost its labels")
	}
	return eng
}

// badChampion returns a copy of m whose forest was fit on INVERTED
// labels — a champion that is reliably worse than a challenger trained
// on the truth, making win/swap outcomes deterministic.
func badChampion(t testing.TB, m *core.Model, eng *frame.Frame) *core.Model {
	t.Helper()
	inverted := make([]int, eng.Rows())
	for i, y := range eng.Labels() {
		inverted[i] = 1 - y
	}
	bad, err := forest.Retrain(m.Forest, eng, inverted, nil, 99)
	if err != nil {
		t.Fatalf("fit inverted champion: %v", err)
	}
	return &core.Model{
		Pipeline:    m.Pipeline,
		Forest:      bad,
		Threshold:   m.Threshold,
		RawSchema:   m.RawSchema,
		Fingerprint: m.Fingerprint,
	}
}

func fillReservoir(mg *Manager, eng *frame.Frame) {
	vec := make([]float64, eng.NumCols())
	for i := 0; i < eng.Rows(); i++ {
		vec = eng.Row(i, vec)
		mg.Reservoir.Add(vec, eng.Labels()[i])
	}
}

func TestManagerRetrainChallengerWinsAndSwaps(t *testing.T) {
	m, ds := sharedModel(t)
	eng := engineeredRows(t, m, ds)
	champ := badChampion(t, m, eng)

	var swapped *core.Model
	var harvests int
	mg, err := NewManager(Config{
		Champion:      champ,
		Policy:        PolicyAuto,
		ReservoirCap:  4096,
		MinFitSamples: 256,
		Seed:          21,
		Swap: func(nm *core.Model, trainSamples int, reason string) error {
			swapped = nm
			if trainSamples == 0 || reason == "" {
				t.Errorf("swap callback got trainSamples=%d reason=%q", trainSamples, reason)
			}
			return nil
		},
		Harvest: func() { harvests++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	fillReservoir(mg, eng)

	rep := mg.RetrainOnce()
	if rep.Skipped != "" || rep.Err != "" {
		t.Fatalf("round did not train: %+v", rep)
	}
	if !rep.Win || !rep.Swapped {
		t.Fatalf("truth-trained challenger lost to inverted champion: %+v", rep)
	}
	if rep.ChallengerF1 <= rep.ChampionF1 {
		t.Fatalf("F1 ordering wrong: challenger %v champion %v", rep.ChallengerF1, rep.ChampionF1)
	}
	if rep.FitSeconds <= 0 || rep.TrainRows == 0 || rep.HoldoutRows == 0 {
		t.Errorf("report bookkeeping missing: %+v", rep)
	}
	if swapped == nil || mg.Champion() != swapped {
		t.Fatal("winning challenger was not promoted")
	}
	if swapped.Pipeline != champ.Pipeline {
		t.Error("promotion must keep the champion's pipeline pointer (warm swap)")
	}
	if swapped.Fingerprint != champ.Fingerprint {
		t.Error("promotion must keep the raw training fingerprint")
	}
	if harvests != 1 {
		t.Errorf("Harvest called %d times, want 1", harvests)
	}
	if wins, losses, _ := mg.Counts(); wins != 1 || losses != 0 {
		t.Errorf("counts = %d wins %d losses, want 1/0", wins, losses)
	}

	st := mg.Status()
	if st.Rounds != 1 || len(st.Reports) != 1 || st.ReservoirRows == 0 {
		t.Errorf("status incomplete: %+v", st)
	}

	// Determinism: a second manager over the same reservoir contents and
	// seed reports identical F1 numbers.
	mg2, err := NewManager(Config{
		Champion: badChampion(t, m, eng), Policy: PolicyShadow,
		ReservoirCap: 4096, MinFitSamples: 256, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	fillReservoir(mg2, eng)
	rep2 := mg2.RetrainOnce()
	if rep2.ChallengerF1 != rep.ChallengerF1 || rep2.ChampionF1 != rep.ChampionF1 {
		t.Errorf("retrain not deterministic: %+v vs %+v", rep, rep2)
	}
}

func TestManagerShadowPolicyNeverSwaps(t *testing.T) {
	m, ds := sharedModel(t)
	eng := engineeredRows(t, m, ds)
	champ := badChampion(t, m, eng)

	mg, err := NewManager(Config{
		Champion:      champ,
		Policy:        PolicyShadow,
		ReservoirCap:  4096,
		MinFitSamples: 256,
		Seed:          5,
		Swap: func(*core.Model, int, string) error {
			t.Error("shadow policy must never call Swap")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fillReservoir(mg, eng)
	rep := mg.RetrainOnce()
	if !rep.Win {
		t.Fatalf("challenger should still win under shadow: %+v", rep)
	}
	if rep.Swapped || mg.Champion() != champ {
		t.Fatal("shadow policy swapped the champion")
	}
}

func TestManagerSkipsUnderfilledReservoir(t *testing.T) {
	m, _ := sharedModel(t)
	var outcomes []string
	mg, err := NewManager(Config{
		Champion:  m,
		Policy:    PolicyShadow,
		OnOutcome: func(o string) { outcomes = append(outcomes, o) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := mg.RetrainOnce()
	if rep.Skipped == "" || rep.Outcome() != "skip" {
		t.Fatalf("empty reservoir did not skip: %+v", rep)
	}
	// A few rows, all one class: still a skip (single-class guard).
	vec := make([]float64, len(m.EngineeredSchema()))
	for i := 0; i < 600; i++ {
		mg.Reservoir.Add(vec, 0)
	}
	rep = mg.RetrainOnce()
	if rep.Skipped == "" {
		t.Fatalf("single-class reservoir did not skip: %+v", rep)
	}
	if len(outcomes) != 2 || outcomes[0] != "skip" || outcomes[1] != "skip" {
		t.Errorf("OnOutcome saw %v, want two skips", outcomes)
	}
	if _, _, skips := mg.Counts(); skips != 2 {
		t.Errorf("skips = %d, want 2", skips)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"off", "shadow", "auto"} {
		if _, err := ParsePolicy(ok); err != nil {
			t.Errorf("ParsePolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Error("NewManager accepted a nil champion")
	}
}

// ---- benchmarks ------------------------------------------------------

func BenchmarkCellObserve(b *testing.B) {
	fp, fr := syntheticFingerprint(b, 20, 1000)
	cell := NewCell()
	vec := make([]float64, 20)
	cell.Observe(fp, "app", fr.Row(0, vec))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec = fr.Row(i%1000, vec)
		cell.Observe(fp, "app", vec)
	}
}

// BenchmarkRetrainChallenger measures one full shadow-retrain round over
// a populated reservoir (the retrain-latency number in BENCH_drift.json).
func BenchmarkRetrainChallenger(b *testing.B) {
	m, ds := sharedModel(b)
	eng := engineeredRows(b, m, ds)
	mg, err := NewManager(Config{
		Champion: m, Policy: PolicyShadow,
		ReservoirCap: 4096, MinFitSamples: 256, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	fillReservoir(mg, eng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := mg.RetrainOnce()
		if rep.Skipped != "" || rep.Err != "" {
			b.Fatalf("round failed: %+v", rep)
		}
	}
}
