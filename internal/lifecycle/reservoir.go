package lifecycle

import (
	"sync"

	"monitorless/internal/frame"
)

// DefaultReservoirCap is the ring capacity (rows) used when a caller
// passes 0.
const DefaultReservoirCap = 8192

// Reservoir is a bounded ring of recent labeled engineered-feature rows —
// the shadow-retrain training set. The serving plane appends a row
// whenever an ingested sample carries a ground-truth label; the retrain
// loop snapshots it into a compact frame. Storage is a frame-native ring:
// one column-major slab allocated up front, rows overwritten in arrival
// order, so steady-state Add allocates nothing.
type Reservoir struct {
	mu     sync.Mutex
	fr     *frame.Frame
	labels []int
	cap    int
	total  uint64
}

// NewReservoir builds a ring over the engineered feature schema with
// capacity capRows (0 selects DefaultReservoirCap).
func NewReservoir(schema frame.Schema, capRows int) *Reservoir {
	if capRows <= 0 {
		capRows = DefaultReservoirCap
	}
	return &Reservoir{
		fr:     frame.NewDense(schema, capRows, nil, nil),
		labels: make([]int, capRows),
		cap:    capRows,
	}
}

// Add appends one labeled engineered row, overwriting the oldest slot
// once the ring is full. vec must match the reservoir schema width;
// mismatched rows are dropped (the serving plane validates upstream).
// Safe for concurrent use; allocation-free at steady state.
func (r *Reservoir) Add(vec []float64, label int) {
	if len(vec) != r.fr.NumCols() {
		return
	}
	r.mu.Lock()
	slot := int(r.total % uint64(r.cap))
	for j, v := range vec {
		r.fr.Set(slot, j, v)
	}
	r.labels[slot] = label
	r.total++
	r.mu.Unlock()
}

// Len returns the number of occupied rows (≤ capacity).
func (r *Reservoir) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.occupied()
}

// Total returns how many labeled rows have ever been added (including
// rows since overwritten).
func (r *Reservoir) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity in rows.
func (r *Reservoir) Cap() int { return r.cap }

func (r *Reservoir) occupied() int {
	if r.total < uint64(r.cap) {
		return int(r.total)
	}
	return r.cap
}

// Snapshot compacts the occupied rows into a fresh labeled frame and
// splits them into train and holdout index sets: every holdoutEvery-th
// slot (by ring position) is held out, the rest train. The split is a
// pure function of slot index, so repeated snapshots of the same
// contents produce the same split — retraining stays deterministic. A
// holdoutEvery ≤ 1 selects the default of 5 (20% holdout).
func (r *Reservoir) Snapshot(holdoutEvery int) (fit *frame.Frame, trainRows, holdRows []int) {
	if holdoutEvery <= 1 {
		holdoutEvery = 5
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.occupied()
	if n == 0 {
		return nil, nil, nil
	}
	// Copy the occupied prefix into a fresh labeled frame so the snapshot
	// is fully decoupled from the live ring.
	snap := frame.NewDense(r.fr.Schema(), n, []frame.Span{{ID: 0, Start: 0, End: n}}, append([]int(nil), r.labels[:n]...))
	for j := 0; j < r.fr.NumCols(); j++ {
		copy(snap.Col(j), r.fr.Col(j)[:n])
	}
	trainRows = make([]int, 0, n-n/holdoutEvery)
	holdRows = make([]int, 0, n/holdoutEvery+1)
	for i := 0; i < n; i++ {
		if i%holdoutEvery == 0 {
			holdRows = append(holdRows, i)
		} else {
			trainRows = append(trainRows, i)
		}
	}
	return snap, trainRows, holdRows
}
