// Package lifecycle is the model-lifecycle plane of the serving system:
// feature-distribution drift detection against the training fingerprint
// stored in v3 model bundles, a bounded frame-native reservoir of recent
// labeled windows, and a shadow-retrain loop that fits challenger
// forests on the fast histogram path and promotes them through an atomic
// hot swap when they beat the champion on held-out data. It turns the
// paper's train-once artifact into a self-healing service: the networkdeg
// exemplar's adaptive-baseline idea (rolling statistics instead of frozen
// cutoffs) applied to the model itself.
//
// The package is serving-agnostic: serving owns the per-shard Cells and
// the swap mechanics; lifecycle owns the statistics and the policy.
// Lock ordering: a Cell is guarded by its owning shard's lock; Monitor
// and Reservoir have internal locks that are only ever acquired *inside*
// a shard lock (Absorb) or with no shard lock held, never the reverse.
package lifecycle

import (
	"math"
	"sort"
	"sync"

	"monitorless/internal/frame"
)

// psiEps floors bin proportions so empty bins cannot drive PSI to ±Inf.
const psiEps = 1e-4

// maxTopOffenders bounds the per-app worst-feature list in drift scores.
const maxTopOffenders = 8

// accum is one application's rolling drift state: streaming moments plus
// a flat per-feature sketch-bin occupancy slab (offsets owned by the
// Cell/Monitor that allocated it).
type accum struct {
	mom    *frame.Moments
	counts []uint32
}

func newAccum(cols, totalBins int) *accum {
	return &accum{mom: frame.NewMoments(cols), counts: make([]uint32, totalBins)}
}

func (a *accum) reset() {
	a.mom.Reset()
	for i := range a.counts {
		a.counts[i] = 0
	}
}

// Cell is one serving shard's drift accumulator set: per-app rolling
// moments and sketch-bin occupancies against a training fingerprint.
// All methods are called under the owning shard's lock; Observe is on
// the ingest hot path and allocates nothing at steady state (per-app
// accumulators are created on first sight and reused forever after).
type Cell struct {
	fp   *frame.Fingerprint
	offs []int32
	apps map[string]*accum
}

// NewCell returns an empty cell; it binds to a fingerprint lazily on the
// first Observe so swaps that change the fingerprint reset cells without
// cross-shard coordination.
func NewCell() *Cell { return &Cell{apps: make(map[string]*accum, 4)} }

// binOffsets computes the flat occupancy-slab offset of each column.
func binOffsets(fp *frame.Fingerprint) []int32 {
	offs := make([]int32, fp.NumCols())
	var t int32
	for j := range offs {
		offs[j] = t
		t += int32(fp.NumBins(j))
	}
	return offs
}

func (c *Cell) rebind(fp *frame.Fingerprint) {
	c.fp = fp
	c.offs = binOffsets(fp)
	// Accumulated counts were laid out for the old sketch; drop them.
	for k := range c.apps {
		delete(c.apps, k)
	}
}

// Observe folds one raw metric vector for app into the cell. A
// fingerprint change (hot swap to a differently-trained bundle) rebinds
// the cell and discards the stale partial window.
func (c *Cell) Observe(fp *frame.Fingerprint, app string, vals []float64) {
	if fp != c.fp {
		c.rebind(fp)
	}
	if len(vals) != fp.NumCols() {
		return // schema-validated upstream; never mix widths into the slab
	}
	a := c.apps[app]
	if a == nil {
		a = newAccum(fp.NumCols(), fp.TotalBins())
		c.apps[app] = a
	}
	a.mom.Observe(vals)
	for j, v := range vals {
		a.counts[a.countsIndex(c.offs[j], fp.Bin(j, v))]++
	}
}

// countsIndex exists so the hot loop's index arithmetic is explicit.
func (a *accum) countsIndex(off int32, bin int) int32 { return off + int32(bin) }

// FeatureDrift is one feature's drift score within a window.
type FeatureDrift struct {
	// Name is the raw metric name.
	Name string `json:"name"`
	// PSI is the population stability index of the window's sketch-bin
	// occupancy against the training proportions (smoothed; ≥ 0).
	// Conventional reading: < 0.1 stable, 0.1–0.25 moderate, > 0.25 major.
	PSI float64 `json:"psi"`
	// Shift is the standardized mean shift |mean_obs − mean_train| / std_train.
	Shift float64 `json:"shift"`
}

// AppDrift is one application's drift summary over its last completed
// window.
type AppDrift struct {
	App     string `json:"app"`
	Samples int    `json:"samples"`
	// Window is the monotone sequence number of the completed window.
	Window uint64 `json:"window"`
	// MaxPSI / MaxShift are the worst per-feature scores, with the
	// offending feature named.
	MaxPSI          float64 `json:"max_psi"`
	MaxPSIFeature   string  `json:"max_psi_feature"`
	MaxShift        float64 `json:"max_shift"`
	MaxShiftFeature string  `json:"max_shift_feature"`
	// Top lists the worst offenders by PSI (bounded).
	Top []FeatureDrift `json:"top,omitempty"`
}

// Monitor aggregates shard cells into per-app drift windows and scores
// each completed window against the training fingerprint. The window is
// counted in samples per app (the serving -drift-window flag), so busy
// and quiet applications each complete windows at their own traffic rate.
type Monitor struct {
	mu      sync.Mutex
	fp      *frame.Fingerprint
	offs    []int32
	window  int
	apps    map[string]*accum
	scores  map[string]AppDrift
	windows uint64
}

// DefaultDriftWindow is the per-app window size (in samples) used when a
// caller passes 0.
const DefaultDriftWindow = 2048

// NewMonitor builds a monitor scoring against fp with the given per-app
// window size in samples (0 selects DefaultDriftWindow).
func NewMonitor(fp *frame.Fingerprint, windowSamples int) *Monitor {
	if windowSamples <= 0 {
		windowSamples = DefaultDriftWindow
	}
	return &Monitor{
		fp:     fp,
		offs:   binOffsets(fp),
		window: windowSamples,
		apps:   make(map[string]*accum),
		scores: make(map[string]AppDrift),
	}
}

// Fingerprint returns the training reference the monitor scores against.
func (m *Monitor) Fingerprint() *frame.Fingerprint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fp
}

// Reset rebinds the monitor to a new fingerprint (a swap to a
// differently-trained bundle), dropping all partial windows and scores.
func (m *Monitor) Reset(fp *frame.Fingerprint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fp = fp
	m.offs = binOffsets(fp)
	m.apps = make(map[string]*accum)
	m.scores = make(map[string]AppDrift)
}

// Absorb merges one shard cell into the monitor's in-progress windows
// and resets the cell in place (its storage is kept for the next
// window). The caller holds the cell's shard lock; the monitor lock
// nests inside it. Any app whose accumulated sample count crosses the
// window size has its window finalized into a drift score.
func (m *Monitor) Absorb(c *Cell) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.fp != m.fp {
		// Cell bound to another model generation (or not yet bound):
		// discard rather than mix sketches.
		if c.fp != nil {
			c.rebind(c.fp)
		}
		return
	}
	for app, ca := range c.apps {
		if ca.mom.Count() == 0 {
			continue
		}
		ma := m.apps[app]
		if ma == nil {
			ma = newAccum(m.fp.NumCols(), m.fp.TotalBins())
			m.apps[app] = ma
		}
		ma.mom.Merge(ca.mom)
		for i, n := range ca.counts {
			ma.counts[i] += n
		}
		ca.reset()
		if int(ma.mom.Count()) >= m.window {
			m.windows++
			m.scores[app] = scoreWindow(m.fp, m.offs, app, ma, m.windows)
			ma.reset()
		}
	}
}

// Windows returns how many per-app windows have been completed and
// scored since the monitor was built (the drift_windows_total counter).
func (m *Monitor) Windows() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windows
}

// Scores snapshots the latest completed-window drift score of every app,
// sorted by app name.
func (m *Monitor) Scores() []AppDrift {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]AppDrift, 0, len(m.scores))
	for _, d := range m.scores {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// MaxPSI returns the worst current per-app MaxPSI across all scored
// apps (0 when no window has completed) — the scalar the swap policy and
// the drift gauges key on.
func (m *Monitor) MaxPSI() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	worst := 0.0
	for _, d := range m.scores {
		if d.MaxPSI > worst {
			worst = d.MaxPSI
		}
	}
	return worst
}

// scoreWindow computes one app's drift score from a completed window.
// Callers hold m.mu.
func scoreWindow(fp *frame.Fingerprint, offs []int32, app string, a *accum, window uint64) AppDrift {
	d := AppDrift{App: app, Samples: int(a.mom.Count()), Window: window}
	n := a.mom.Count()
	if n == 0 {
		return d
	}
	feats := make([]FeatureDrift, 0, fp.NumCols())
	for j := 0; j < fp.NumCols(); j++ {
		ref := &fp.Cols[j]
		fd := FeatureDrift{Name: ref.Name}
		if ref.Std > 0 {
			fd.Shift = math.Abs(a.mom.Mean(j)-ref.Mean) / ref.Std
		}
		bins := len(ref.Props)
		for b := 0; b < bins; b++ {
			po := float64(a.counts[int(offs[j])+b]) / n
			pe := ref.Props[b]
			if po < psiEps {
				po = psiEps
			}
			if pe < psiEps {
				pe = psiEps
			}
			fd.PSI += (po - pe) * math.Log(po/pe)
		}
		if fd.PSI > d.MaxPSI {
			d.MaxPSI, d.MaxPSIFeature = fd.PSI, fd.Name
		}
		if fd.Shift > d.MaxShift {
			d.MaxShift, d.MaxShiftFeature = fd.Shift, fd.Name
		}
		feats = append(feats, fd)
	}
	sort.Slice(feats, func(i, j int) bool {
		if feats[i].PSI != feats[j].PSI {
			return feats[i].PSI > feats[j].PSI
		}
		return feats[i].Name < feats[j].Name
	})
	if len(feats) > maxTopOffenders {
		feats = feats[:maxTopOffenders]
	}
	d.Top = feats
	return d
}
