package cluster

import (
	"fmt"
	"testing"
)

// BenchmarkArbitrate measures one node's resource arbitration across 12
// contending containers (the M2 evaluation host's worst case).
func BenchmarkArbitrate(b *testing.B) {
	n := NewNode("bench", 12, 32, 400, 1000)
	c, err := New(n)
	if err != nil {
		b.Fatal(err)
	}
	demands := map[string]Demand{}
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("app/svc%d/0", i)
		if err := c.Place("bench", &Container{ID: id, CPULimit: 2}); err != nil {
			b.Fatal(err)
		}
		demands[id] = Demand{CPU: 1.5, Disk: 50, Net: 100, MemBW: 3}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Arbitrate(demands)
	}
}
