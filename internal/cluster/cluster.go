// Package cluster models the physical substrate of the paper's testbed:
// nodes (HP ProLiant-class servers), Linux containers with cgroup CPU and
// memory limits, and the per-node arbitration of shared resources (CPU
// cores via fair-share water-filling, disk bandwidth, network bandwidth
// and memory bandwidth). Co-located containers interfere exactly through
// this arbitration, which is what the paper's parallel training runs
// (Table 1, "Par" column) exercise.
package cluster

import (
	"fmt"
	"sort"
)

// Node is a physical host.
type Node struct {
	// Name identifies the node ("M1", "M2", ...).
	Name string
	// Cores is the CPU core count.
	Cores float64
	// MemGB is installed memory.
	MemGB float64
	// DiskMBps is the aggregate disk bandwidth.
	DiskMBps float64
	// NetMbps is the NIC bandwidth.
	NetMbps float64
	// MemBWGBps is the memory bandwidth (Memcache's unconstrained
	// bottleneck in Table 1 run 7).
	MemBWGBps float64
	// OS is informational (the paper trains on CentOS and evaluates on
	// Debian/Ubuntu to show robustness).
	OS string

	containers []*Container
}

// NewNode returns a node with the given capacities.
func NewNode(name string, cores, memGB, diskMBps, netMbps float64) *Node {
	return &Node{
		Name:      name,
		Cores:     cores,
		MemGB:     memGB,
		DiskMBps:  diskMBps,
		NetMbps:   netMbps,
		MemBWGBps: 40,
		OS:        "linux",
	}
}

// Containers returns a copy of the containers currently placed on the
// node, sorted by ID.
func (n *Node) Containers() []*Container {
	out := make([]*Container, len(n.containers))
	copy(out, n.containers)
	return out
}

// Placed returns the node's containers sorted by ID as a shared read-only
// view: no copy is made, and the slice is only valid until the next Place
// or Remove on the owning cluster (watch Cluster.Epoch to detect that).
// The per-tick hot paths index their arenas by position in this slice.
func (n *Node) Placed() []*Container { return n.containers }

// Container is one service instance's virtual environment.
type Container struct {
	// ID is unique within the cluster.
	ID string
	// Service and App name what runs inside.
	Service string
	App     string
	// CPULimit is the cgroup CPU quota in cores; 0 means unlimited.
	CPULimit float64
	// MemLimitGB is the cgroup memory limit; 0 means unlimited.
	MemLimitGB float64

	node *Node
	slot int32 // dense cluster-wide slot, stable while placed
	pos  int32 // index into node.containers (ID-sorted)
}

// Node returns the hosting node, or nil if unplaced.
func (c *Container) Node() *Node { return c.node }

// Slot returns the container's dense cluster-wide slot index, assigned by
// Place and stable until Remove (slots of removed containers are reused).
// Collectors index per-container state slabs by slot instead of hashing
// the string ID every tick. Returns -1 if the container is not placed.
func (c *Container) Slot() int32 {
	if c.node == nil {
		return -1
	}
	return c.slot
}

// NodeIndex returns the container's position in its node's ID-sorted
// container list (Node.Placed), or -1 if unplaced. Valid until the next
// Place/Remove on the cluster.
func (c *Container) NodeIndex() int32 {
	if c.node == nil {
		return -1
	}
	return c.pos
}

// Cluster is a set of nodes with container placement.
type Cluster struct {
	nodes      []*Node
	nodeByName map[string]*Node
	// containers is the string-ID boundary map: placement, scaling and
	// wire-facing lookups go through it. The per-tick hot paths never
	// range over it (map iteration order is random; slot and node-position
	// indices carry the deterministic order instead), so its order cannot
	// leak into emitted metrics.
	containers map[string]*Container

	slots     []*Container // dense slot registry; nil entries are free
	freeSlots []int32      // LIFO free list of slot indices
	epoch     uint64       // bumped by every Place/Remove
}

// New returns a cluster over the given nodes.
func New(nodes ...*Node) (*Cluster, error) {
	c := &Cluster{
		nodeByName: make(map[string]*Node, len(nodes)),
		containers: make(map[string]*Container),
	}
	for _, n := range nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node without a name")
		}
		if _, dup := c.nodeByName[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", n.Name)
		}
		c.nodes = append(c.nodes, n)
		c.nodeByName[n.Name] = n
	}
	return c, nil
}

// NodesView returns the cluster's nodes in insertion order as a shared
// read-only view (no copy); the slice must not be mutated.
func (c *Cluster) NodesView() []*Node { return c.nodes }

// Nodes returns a copy of the cluster's nodes in insertion order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Node looks a node up by name.
func (c *Cluster) Node(name string) (*Node, bool) {
	n, ok := c.nodeByName[name]
	return n, ok
}

// Epoch returns a counter that changes whenever the container topology
// does (every Place/Remove). Hot paths cache slot- and position-indexed
// arenas and rebuild them when the epoch moves.
func (c *Cluster) Epoch() uint64 { return c.epoch }

// NumSlots returns the size of the dense slot space (placed containers
// plus currently free slots). Slot-indexed state slabs are sized by it.
func (c *Cluster) NumSlots() int { return len(c.slots) }

// BySlot returns the container occupying a slot, or nil if the slot is
// free or out of range.
func (c *Cluster) BySlot(slot int32) *Container {
	if slot < 0 || int(slot) >= len(c.slots) {
		return nil
	}
	return c.slots[slot]
}

// Place creates a container on the named node, assigning it a dense slot
// and inserting it into the node's ID-sorted container list.
func (c *Cluster) Place(nodeName string, ctr *Container) error {
	n, ok := c.nodeByName[nodeName]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", nodeName)
	}
	if ctr.ID == "" {
		return fmt.Errorf("cluster: container without an ID")
	}
	if _, dup := c.containers[ctr.ID]; dup {
		return fmt.Errorf("cluster: duplicate container %q", ctr.ID)
	}
	ctr.node = n
	if k := len(c.freeSlots); k > 0 {
		ctr.slot = c.freeSlots[k-1]
		c.freeSlots = c.freeSlots[:k-1]
		c.slots[ctr.slot] = ctr
	} else {
		ctr.slot = int32(len(c.slots))
		c.slots = append(c.slots, ctr)
	}
	// Keep the node list sorted by ID so positional iteration is the
	// deterministic order (and the floating-point accumulation order).
	i := sort.Search(len(n.containers), func(i int) bool { return n.containers[i].ID >= ctr.ID })
	n.containers = append(n.containers, nil)
	copy(n.containers[i+1:], n.containers[i:])
	n.containers[i] = ctr
	for j := i; j < len(n.containers); j++ {
		n.containers[j].pos = int32(j)
	}
	c.containers[ctr.ID] = ctr
	c.epoch++
	return nil
}

// Remove deletes a container from the cluster (scale-in), releasing its
// slot for reuse.
func (c *Cluster) Remove(id string) error {
	ctr, ok := c.containers[id]
	if !ok {
		return fmt.Errorf("cluster: unknown container %q", id)
	}
	delete(c.containers, id)
	n := ctr.node
	for i, x := range n.containers {
		if x == ctr {
			n.containers = append(n.containers[:i], n.containers[i+1:]...)
			for j := i; j < len(n.containers); j++ {
				n.containers[j].pos = int32(j)
			}
			break
		}
	}
	c.slots[ctr.slot] = nil
	c.freeSlots = append(c.freeSlots, ctr.slot)
	ctr.node = nil
	ctr.slot = -1
	ctr.pos = -1
	c.epoch++
	return nil
}

// Container looks a container up by ID.
func (c *Cluster) Container(id string) (*Container, bool) {
	ctr, ok := c.containers[id]
	return ctr, ok
}

// Containers returns all containers sorted by ID (deterministic iteration).
func (c *Cluster) Containers() []*Container {
	out := make([]*Container, 0, len(c.containers))
	for _, ctr := range c.containers {
		out = append(out, ctr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LeastLoadedNode returns the node with the fewest containers; used by the
// autoscaler to place replicas.
func (c *Cluster) LeastLoadedNode() *Node {
	if len(c.nodes) == 0 {
		return nil
	}
	best := c.nodes[0]
	for _, n := range c.nodes[1:] {
		if len(n.containers) < len(best.containers) {
			best = n
		}
	}
	return best
}

// Demand is one container's resource request for a tick.
type Demand struct {
	// CPU in cores, Disk in MB/s, Net in Mbit/s, MemBW in GB/s.
	CPU, Disk, Net, MemBW float64
}

// Grant is the arbitrated allocation for a tick.
type Grant struct {
	CPU, Disk, Net, MemBW float64
	// CPUThrottled reports whether the cgroup CPU limit clipped the
	// container's demand (the kernel's nr_throttled analogue).
	CPUThrottled bool
}

// cpuState is the water-filling working state for one container.
type cpuState struct {
	want    float64 // demand clipped by cgroup limit
	rawWant float64
	granted float64
}

// ArbScratch holds Arbitrate's reusable working state so steady-state
// arbitration performs no allocations. A scratch may be reused across
// ticks and across nodes, but not concurrently.
type ArbScratch struct {
	states []cpuState
}

// ArbitrateInto distributes one node's resources over per-container
// demands for one tick, writing the allocations into grants. CPU uses
// max-min fair water-filling honoring per-container cgroup limits; disk,
// network and memory bandwidth are shared proportionally when
// oversubscribed.
//
// ctrs, demands and grants are parallel slices: demands[i] is the request
// of ctrs[i] and grants[i] receives its allocation. ctrs must be in
// ID-sorted order (Node.Placed, or a subset preserving that order) — the
// iteration order is the floating-point accumulation order, so a sorted
// slice makes arbitration bit-reproducible. A nil ctrs[i] is treated as a
// container without a cgroup CPU limit. Every element participates in the
// water-fill (zero demands included), mirroring one entry per map key in
// the Arbitrate boundary wrapper.
func (n *Node) ArbitrateInto(ctrs []*Container, demands []Demand, grants []Grant, scr *ArbScratch) {
	if len(demands) != len(ctrs) || len(grants) != len(ctrs) {
		panic("cluster: ArbitrateInto slice length mismatch")
	}

	// --- CPU: max-min fair with cgroup caps. -------------------------
	states := scr.states[:0]
	for i := range ctrs {
		lim := n.Cores
		if ctr := ctrs[i]; ctr != nil && ctr.CPULimit > 0 && ctr.CPULimit < lim {
			lim = ctr.CPULimit
		}
		want := demands[i].CPU
		if want > lim {
			want = lim
		}
		states = append(states, cpuState{want: want, rawWant: demands[i].CPU})
	}
	scr.states = states
	remaining := n.Cores
	unsat := len(states)
	for unsat > 0 && remaining > 1e-12 {
		share := remaining / float64(unsat)
		progressed := false
		for i := range states {
			s := &states[i]
			need := s.want - s.granted
			if need <= 1e-12 {
				continue
			}
			give := share
			if give > need {
				give = need
			}
			s.granted += give
			remaining -= give
			progressed = true
		}
		unsat = 0
		for i := range states {
			if states[i].want-states[i].granted > 1e-12 {
				unsat++
			}
		}
		if !progressed {
			break
		}
	}

	// --- Disk / Net / MemBW: proportional sharing. --------------------
	var diskSum, netSum, bwSum float64
	for i := range demands {
		diskSum += demands[i].Disk
		netSum += demands[i].Net
		bwSum += demands[i].MemBW
	}
	scale := func(total, capacity float64) float64 {
		if capacity <= 0 || total <= capacity {
			return 1
		}
		return capacity / total
	}
	diskF := scale(diskSum, n.DiskMBps)
	netF := scale(netSum, n.NetMbps)
	bwF := scale(bwSum, n.MemBWGBps)

	for i := range states {
		s := &states[i]
		grants[i] = Grant{
			CPU:   s.granted,
			Disk:  demands[i].Disk * diskF,
			Net:   demands[i].Net * netF,
			MemBW: demands[i].MemBW * bwF,
			// Only the cgroup quota clip counts as kernel throttling;
			// host contention shows up as load, not nr_throttled.
			CPUThrottled: s.rawWant > s.want+1e-12,
		}
	}
}

// Arbitrate is the map-keyed boundary wrapper over ArbitrateInto for
// callers outside the tick hot path. demands is keyed by container ID and
// must only contain containers placed on this node (unknown IDs are
// treated as unlimited containers). The map is reduced to ID-sorted
// slices before arbitration, so map iteration order never reaches the
// floating-point accumulation: results are bit-identical for any map
// layout.
func (n *Node) Arbitrate(demands map[string]Demand) map[string]Grant {
	ids := make([]string, 0, len(demands))
	for id := range demands {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	ctrs := make([]*Container, len(ids))
	dem := make([]Demand, len(ids))
	for i, id := range ids {
		for _, ctr := range n.containers {
			if ctr.ID == id {
				ctrs[i] = ctr
				break
			}
		}
		dem[i] = demands[id]
	}
	grants := make([]Grant, len(ids))
	var scr ArbScratch
	n.ArbitrateInto(ctrs, dem, grants, &scr)

	out := make(map[string]Grant, len(ids))
	for i, id := range ids {
		out[id] = grants[i]
	}
	return out
}
