// Package cluster models the physical substrate of the paper's testbed:
// nodes (HP ProLiant-class servers), Linux containers with cgroup CPU and
// memory limits, and the per-node arbitration of shared resources (CPU
// cores via fair-share water-filling, disk bandwidth, network bandwidth
// and memory bandwidth). Co-located containers interfere exactly through
// this arbitration, which is what the paper's parallel training runs
// (Table 1, "Par" column) exercise.
package cluster

import (
	"fmt"
	"sort"
)

// Node is a physical host.
type Node struct {
	// Name identifies the node ("M1", "M2", ...).
	Name string
	// Cores is the CPU core count.
	Cores float64
	// MemGB is installed memory.
	MemGB float64
	// DiskMBps is the aggregate disk bandwidth.
	DiskMBps float64
	// NetMbps is the NIC bandwidth.
	NetMbps float64
	// MemBWGBps is the memory bandwidth (Memcache's unconstrained
	// bottleneck in Table 1 run 7).
	MemBWGBps float64
	// OS is informational (the paper trains on CentOS and evaluates on
	// Debian/Ubuntu to show robustness).
	OS string

	containers []*Container
}

// NewNode returns a node with the given capacities.
func NewNode(name string, cores, memGB, diskMBps, netMbps float64) *Node {
	return &Node{
		Name:      name,
		Cores:     cores,
		MemGB:     memGB,
		DiskMBps:  diskMBps,
		NetMbps:   netMbps,
		MemBWGBps: 40,
		OS:        "linux",
	}
}

// Containers returns the containers currently placed on the node.
func (n *Node) Containers() []*Container {
	out := make([]*Container, len(n.containers))
	copy(out, n.containers)
	return out
}

// Container is one service instance's virtual environment.
type Container struct {
	// ID is unique within the cluster.
	ID string
	// Service and App name what runs inside.
	Service string
	App     string
	// CPULimit is the cgroup CPU quota in cores; 0 means unlimited.
	CPULimit float64
	// MemLimitGB is the cgroup memory limit; 0 means unlimited.
	MemLimitGB float64

	node *Node
}

// Node returns the hosting node, or nil if unplaced.
func (c *Container) Node() *Node { return c.node }

// Cluster is a set of nodes with container placement.
type Cluster struct {
	nodes      []*Node
	nodeByName map[string]*Node
	containers map[string]*Container
}

// New returns a cluster over the given nodes.
func New(nodes ...*Node) (*Cluster, error) {
	c := &Cluster{
		nodeByName: make(map[string]*Node, len(nodes)),
		containers: make(map[string]*Container),
	}
	for _, n := range nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node without a name")
		}
		if _, dup := c.nodeByName[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", n.Name)
		}
		c.nodes = append(c.nodes, n)
		c.nodeByName[n.Name] = n
	}
	return c, nil
}

// Nodes returns the cluster's nodes in insertion order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Node looks a node up by name.
func (c *Cluster) Node(name string) (*Node, bool) {
	n, ok := c.nodeByName[name]
	return n, ok
}

// Place creates a container on the named node.
func (c *Cluster) Place(nodeName string, ctr *Container) error {
	n, ok := c.nodeByName[nodeName]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", nodeName)
	}
	if ctr.ID == "" {
		return fmt.Errorf("cluster: container without an ID")
	}
	if _, dup := c.containers[ctr.ID]; dup {
		return fmt.Errorf("cluster: duplicate container %q", ctr.ID)
	}
	ctr.node = n
	n.containers = append(n.containers, ctr)
	c.containers[ctr.ID] = ctr
	return nil
}

// Remove deletes a container from the cluster (scale-in).
func (c *Cluster) Remove(id string) error {
	ctr, ok := c.containers[id]
	if !ok {
		return fmt.Errorf("cluster: unknown container %q", id)
	}
	delete(c.containers, id)
	n := ctr.node
	for i, x := range n.containers {
		if x == ctr {
			n.containers = append(n.containers[:i], n.containers[i+1:]...)
			break
		}
	}
	ctr.node = nil
	return nil
}

// Container looks a container up by ID.
func (c *Cluster) Container(id string) (*Container, bool) {
	ctr, ok := c.containers[id]
	return ctr, ok
}

// Containers returns all containers sorted by ID (deterministic iteration).
func (c *Cluster) Containers() []*Container {
	out := make([]*Container, 0, len(c.containers))
	for _, ctr := range c.containers {
		out = append(out, ctr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LeastLoadedNode returns the node with the fewest containers; used by the
// autoscaler to place replicas.
func (c *Cluster) LeastLoadedNode() *Node {
	if len(c.nodes) == 0 {
		return nil
	}
	best := c.nodes[0]
	for _, n := range c.nodes[1:] {
		if len(n.containers) < len(best.containers) {
			best = n
		}
	}
	return best
}

// Demand is one container's resource request for a tick.
type Demand struct {
	// CPU in cores, Disk in MB/s, Net in Mbit/s, MemBW in GB/s.
	CPU, Disk, Net, MemBW float64
}

// Grant is the arbitrated allocation for a tick.
type Grant struct {
	CPU, Disk, Net, MemBW float64
	// CPUThrottled reports whether the cgroup CPU limit clipped the
	// container's demand (the kernel's nr_throttled analogue).
	CPUThrottled bool
}

// Arbitrate distributes one node's resources over the demands of its
// containers for one tick. CPU uses max-min fair water-filling honoring
// per-container cgroup limits; disk, network and memory bandwidth are
// shared proportionally when oversubscribed. demands is keyed by container
// ID and must only contain containers placed on this node.
func (n *Node) Arbitrate(demands map[string]Demand) map[string]Grant {
	grants := make(map[string]Grant, len(demands))

	// Deterministic ordering.
	ids := make([]string, 0, len(demands))
	for id := range demands {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// --- CPU: max-min fair with cgroup caps. -------------------------
	type cpuState struct {
		id      string
		want    float64 // demand clipped by cgroup limit
		rawWant float64
		granted float64
	}
	states := make([]cpuState, 0, len(ids))
	limitOf := func(id string) float64 {
		for _, ctr := range n.containers {
			if ctr.ID == id {
				if ctr.CPULimit > 0 && ctr.CPULimit < n.Cores {
					return ctr.CPULimit
				}
				return n.Cores
			}
		}
		return n.Cores
	}
	for _, id := range ids {
		d := demands[id]
		lim := limitOf(id)
		want := d.CPU
		if want > lim {
			want = lim
		}
		states = append(states, cpuState{id: id, want: want, rawWant: d.CPU})
	}
	remaining := n.Cores
	unsat := len(states)
	for unsat > 0 && remaining > 1e-12 {
		share := remaining / float64(unsat)
		progressed := false
		for i := range states {
			s := &states[i]
			need := s.want - s.granted
			if need <= 1e-12 {
				continue
			}
			give := share
			if give > need {
				give = need
			}
			s.granted += give
			remaining -= give
			progressed = true
		}
		unsat = 0
		for i := range states {
			if states[i].want-states[i].granted > 1e-12 {
				unsat++
			}
		}
		if !progressed {
			break
		}
	}

	// --- Disk / Net / MemBW: proportional sharing. --------------------
	var diskSum, netSum, bwSum float64
	for _, id := range ids {
		d := demands[id]
		diskSum += d.Disk
		netSum += d.Net
		bwSum += d.MemBW
	}
	scale := func(total, capacity float64) float64 {
		if capacity <= 0 || total <= capacity {
			return 1
		}
		return capacity / total
	}
	diskF := scale(diskSum, n.DiskMBps)
	netF := scale(netSum, n.NetMbps)
	bwF := scale(bwSum, n.MemBWGBps)

	for _, s := range states {
		d := demands[s.id]
		grants[s.id] = Grant{
			CPU:   s.granted,
			Disk:  d.Disk * diskF,
			Net:   d.Net * netF,
			MemBW: d.MemBW * bwF,
			// Only the cgroup quota clip counts as kernel throttling;
			// host contention shows up as load, not nr_throttled.
			CPUThrottled: s.rawWant > s.want+1e-12,
		}
	}
	return grants
}
