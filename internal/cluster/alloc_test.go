package cluster

import "testing"

// TestArbitrateAllocations pins the slice-based arbitration hot path at
// zero steady-state allocations: with a warmed scratch, ArbitrateInto
// must not touch the heap (the map-keyed Arbitrate wrapper is the
// boundary path and is allowed to allocate).
func TestArbitrateAllocations(t *testing.T) {
	c, err := New(NewNode("n1", 8, 64, 500, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := c.Place("n1", &Container{ID: id, CPULimit: 3}); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := c.Node("n1")
	ctrs := n.Placed()
	demands := make([]Demand, len(ctrs))
	grants := make([]Grant, len(ctrs))
	for i := range demands {
		demands[i] = Demand{CPU: 2.5, Disk: 200, Net: 400, MemBW: 5}
	}
	var scr ArbScratch
	n.ArbitrateInto(ctrs, demands, grants, &scr) // warm the scratch

	allocs := testing.AllocsPerRun(200, func() {
		n.ArbitrateInto(ctrs, demands, grants, &scr)
	})
	if allocs > 0 {
		t.Errorf("ArbitrateInto allocates %.1f objects/op, want 0", allocs)
	}
}
