package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(NewNode("n1", 8, 32, 400, 1000), NewNode("n2", 4, 16, 200, 1000))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(&Node{}); err == nil {
		t.Error("expected error for unnamed node")
	}
	if _, err := New(NewNode("a", 1, 1, 1, 1), NewNode("a", 1, 1, 1, 1)); err == nil {
		t.Error("expected error for duplicate node")
	}
}

func TestPlaceAndLookup(t *testing.T) {
	c := newTestCluster(t)
	ctr := &Container{ID: "app/svc/0", Service: "svc", App: "app", CPULimit: 2}
	if err := c.Place("n1", ctr); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if ctr.Node() == nil || ctr.Node().Name != "n1" {
		t.Error("container not attached to n1")
	}
	got, ok := c.Container("app/svc/0")
	if !ok || got != ctr {
		t.Error("Container lookup failed")
	}
	n, ok := c.Node("n1")
	if !ok || len(n.Containers()) != 1 {
		t.Error("node lookup or container list failed")
	}
}

func TestPlaceErrors(t *testing.T) {
	c := newTestCluster(t)
	if err := c.Place("missing", &Container{ID: "x"}); err == nil {
		t.Error("expected unknown-node error")
	}
	if err := c.Place("n1", &Container{}); err == nil {
		t.Error("expected missing-ID error")
	}
	ctr := &Container{ID: "dup"}
	if err := c.Place("n1", ctr); err != nil {
		t.Fatal(err)
	}
	if err := c.Place("n2", &Container{ID: "dup"}); err == nil {
		t.Error("expected duplicate-ID error")
	}
}

func TestRemove(t *testing.T) {
	c := newTestCluster(t)
	ctr := &Container{ID: "r"}
	if err := c.Place("n1", ctr); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("r"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, ok := c.Container("r"); ok {
		t.Error("container still present after Remove")
	}
	n, _ := c.Node("n1")
	if len(n.Containers()) != 0 {
		t.Error("node still lists removed container")
	}
	if err := c.Remove("r"); err == nil {
		t.Error("expected error removing twice")
	}
}

func TestContainersSorted(t *testing.T) {
	c := newTestCluster(t)
	for _, id := range []string{"c", "a", "b"} {
		if err := c.Place("n1", &Container{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Containers()
	if len(got) != 3 || got[0].ID != "a" || got[1].ID != "b" || got[2].ID != "c" {
		t.Errorf("Containers not sorted: %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
}

func TestLeastLoadedNode(t *testing.T) {
	c := newTestCluster(t)
	if err := c.Place("n1", &Container{ID: "1"}); err != nil {
		t.Fatal(err)
	}
	if n := c.LeastLoadedNode(); n.Name != "n2" {
		t.Errorf("LeastLoadedNode = %s, want n2", n.Name)
	}
	empty, _ := New()
	if empty.LeastLoadedNode() != nil {
		t.Error("empty cluster should return nil")
	}
}

func TestArbitrateUncontended(t *testing.T) {
	c := newTestCluster(t)
	n, _ := c.Node("n1") // 8 cores, 400 MB/s disk, 1000 Mbps
	if err := c.Place("n1", &Container{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	g := n.Arbitrate(map[string]Demand{"a": {CPU: 2, Disk: 100, Net: 100, MemBW: 1}})
	ga := g["a"]
	if ga.CPU != 2 || ga.Disk != 100 || ga.Net != 100 || ga.MemBW != 1 {
		t.Errorf("uncontended grant clipped: %+v", ga)
	}
	if ga.CPUThrottled {
		t.Error("no limit, no contention: must not be throttled")
	}
}

func TestArbitrateCgroupLimit(t *testing.T) {
	c := newTestCluster(t)
	n, _ := c.Node("n1")
	if err := c.Place("n1", &Container{ID: "a", CPULimit: 1.5}); err != nil {
		t.Fatal(err)
	}
	g := n.Arbitrate(map[string]Demand{"a": {CPU: 4}})
	if got := g["a"].CPU; math.Abs(got-1.5) > 1e-9 {
		t.Errorf("granted %v, want cgroup limit 1.5", got)
	}
	if !g["a"].CPUThrottled {
		t.Error("demand above cgroup limit must report throttling")
	}
}

func TestArbitrateHostContention(t *testing.T) {
	c := newTestCluster(t)
	n, _ := c.Node("n2") // 4 cores
	for _, id := range []string{"a", "b"} {
		if err := c.Place("n2", &Container{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	g := n.Arbitrate(map[string]Demand{
		"a": {CPU: 3},
		"b": {CPU: 3},
	})
	// Max-min fair: both want 3, capacity 4 → 2 each.
	if math.Abs(g["a"].CPU-2) > 1e-9 || math.Abs(g["b"].CPU-2) > 1e-9 {
		t.Errorf("contended grants %v / %v, want 2 / 2", g["a"].CPU, g["b"].CPU)
	}
	// Host contention is not cgroup throttling.
	if g["a"].CPUThrottled || g["b"].CPUThrottled {
		t.Error("host contention must not be flagged as cgroup throttling")
	}
}

func TestArbitrateMaxMinFavorsSmall(t *testing.T) {
	c := newTestCluster(t)
	n, _ := c.Node("n2") // 4 cores
	for _, id := range []string{"small", "big"} {
		if err := c.Place("n2", &Container{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	g := n.Arbitrate(map[string]Demand{
		"small": {CPU: 0.5},
		"big":   {CPU: 10},
	})
	if math.Abs(g["small"].CPU-0.5) > 1e-9 {
		t.Errorf("small demand should be fully satisfied, got %v", g["small"].CPU)
	}
	if math.Abs(g["big"].CPU-3.5) > 1e-9 {
		t.Errorf("big gets the rest: %v, want 3.5", g["big"].CPU)
	}
}

func TestArbitrateDiskProportional(t *testing.T) {
	c := newTestCluster(t)
	n, _ := c.Node("n1") // 400 MB/s
	for _, id := range []string{"a", "b"} {
		if err := c.Place("n1", &Container{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	g := n.Arbitrate(map[string]Demand{
		"a": {Disk: 300},
		"b": {Disk: 300},
	})
	if math.Abs(g["a"].Disk-200) > 1e-9 || math.Abs(g["b"].Disk-200) > 1e-9 {
		t.Errorf("disk not shared proportionally: %v / %v", g["a"].Disk, g["b"].Disk)
	}
}

// Property: arbitration never over-allocates any resource and never grants
// more than demanded.
func TestArbitrateConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := NewNode("x", 4+r.Float64()*28, 32, 100+r.Float64()*500, 1000)
		c, err := New(n)
		if err != nil {
			return false
		}
		k := 1 + r.Intn(6)
		demands := map[string]Demand{}
		for i := 0; i < k; i++ {
			id := string(rune('a' + i))
			lim := 0.0
			if r.Float64() < 0.5 {
				lim = 0.5 + r.Float64()*4
			}
			if err := c.Place("x", &Container{ID: id, CPULimit: lim}); err != nil {
				return false
			}
			demands[id] = Demand{
				CPU:   r.Float64() * 10,
				Disk:  r.Float64() * 400,
				Net:   r.Float64() * 800,
				MemBW: r.Float64() * 30,
			}
		}
		grants := n.Arbitrate(demands)
		var cpu, disk, net, bw float64
		for id, g := range grants {
			d := demands[id]
			if g.CPU > d.CPU+1e-9 || g.Disk > d.Disk+1e-9 || g.Net > d.Net+1e-9 || g.MemBW > d.MemBW+1e-9 {
				return false // granted more than asked
			}
			if g.CPU < -1e-12 || g.Disk < -1e-12 {
				return false
			}
			cpu += g.CPU
			disk += g.Disk
			net += g.Net
			bw += g.MemBW
		}
		return cpu <= n.Cores+1e-6 && disk <= n.DiskMBps+1e-6 &&
			net <= n.NetMbps+1e-6 && bw <= n.MemBWGBps+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
