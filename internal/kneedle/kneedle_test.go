package kneedle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// saturatingThroughput models the paper's Figure 2 shape: throughput grows
// linearly with load until the knee, then flattens.
func saturatingThroughput(load, knee float64) float64 {
	if load <= knee {
		return load
	}
	return knee + (load-knee)*0.05
}

func rampSeries(n int, maxLoad, knee, noise float64, seed int64) (x, y []float64) {
	r := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = maxLoad * float64(i+1) / float64(n)
		y[i] = saturatingThroughput(x[i], knee) * (1 + noise*r.NormFloat64())
	}
	return x, y
}

func TestDetectFindsKnee(t *testing.T) {
	x, y := rampSeries(300, 1000, 700, 0.02, 1)
	res, err := Detect(x, y, Options{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no knee found")
	}
	if best.X < 600 || best.X > 800 {
		t.Errorf("knee at x=%v, want ~700", best.X)
	}
}

func TestDetectNoiseRobust(t *testing.T) {
	x, y := rampSeries(400, 1000, 500, 0.10, 2)
	res, err := Detect(x, y, Options{SmoothWindow: 31, SmoothOrder: 2})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no knee found")
	}
	if best.X < 380 || best.X > 650 {
		t.Errorf("knee at x=%v, want ~500 despite noise", best.X)
	}
}

func TestDetectConvex(t *testing.T) {
	// Response-time style curve: flat then exploding after the knee.
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i + 1)
		if x[i] < 200 {
			y[i] = 10
		} else {
			y[i] = 10 + math.Pow(x[i]-200, 1.5)
		}
	}
	res, err := Detect(x, y, Options{Curvature: Convex})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no knee found")
	}
	if best.X < 150 || best.X > 280 {
		t.Errorf("convex knee at x=%v, want ~200-250", best.X)
	}
}

func TestDetectValidation(t *testing.T) {
	if _, err := Detect([]float64{1, 2}, []float64{1}, Options{}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Detect([]float64{1, 2, 3}, []float64{1, 2, 3}, Options{}); err == nil {
		t.Error("expected too-short error")
	}
	if _, err := Detect([]float64{1, 2, 2, 3, 4, 5}, []float64{1, 2, 3, 4, 5, 6}, Options{}); err == nil {
		t.Error("expected non-increasing-x error")
	}
}

func TestDetectFlatSeries(t *testing.T) {
	x := make([]float64, 20)
	y := make([]float64, 20)
	for i := range x {
		x[i] = float64(i + 1)
		y[i] = 5
	}
	if _, err := Detect(x, y, Options{}); err == nil {
		t.Error("expected flat-series error")
	}
}

func TestResultCurvesAligned(t *testing.T) {
	x, y := rampSeries(100, 100, 60, 0.01, 3)
	res, err := Detect(x, y, Options{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if len(res.Smoothed) != len(x) || len(res.NormX) != len(x) ||
		len(res.NormY) != len(x) || len(res.Difference) != len(x) {
		t.Fatal("intermediate curves must align with the input length")
	}
	for i := range res.NormX {
		if res.NormX[i] < -1e-9 || res.NormX[i] > 1+1e-9 {
			t.Fatalf("NormX[%d]=%v outside unit interval", i, res.NormX[i])
		}
		if res.NormY[i] < -1e-9 || res.NormY[i] > 1+1e-9 {
			t.Fatalf("NormY[%d]=%v outside unit interval", i, res.NormY[i])
		}
	}
}

func TestKneesSortedBySharpness(t *testing.T) {
	x, y := rampSeries(300, 1000, 700, 0.05, 4)
	res, err := Detect(x, y, Options{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	for i := 1; i < len(res.Knees); i++ {
		if res.Knees[i].Difference > res.Knees[i-1].Difference {
			t.Fatal("knees not sorted by descending difference")
		}
	}
}

// Property: detection is invariant to positive linear rescaling of y (the
// unit-square normalization guarantees it).
func TestDetectScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := rampSeries(150, 500, 250, 0.03, seed)
		scale := 0.5 + 10*r.Float64()
		offset := -100 + 200*r.Float64()
		y2 := make([]float64, len(y))
		for i := range y {
			y2[i] = y[i]*scale + offset
		}
		r1, err1 := Detect(x, y, Options{SmoothWindow: 11})
		r2, err2 := Detect(x, y2, Options{SmoothWindow: 11})
		if err1 != nil || err2 != nil {
			return false
		}
		b1, ok1 := r1.Best()
		b2, ok2 := r2.Best()
		if !ok1 || !ok2 {
			return false
		}
		return b1.Index == b2.Index
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
