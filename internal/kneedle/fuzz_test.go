package kneedle

import (
	"encoding/binary"
	"math"
	"testing"
)

func decodeSeries(data []byte) []float64 {
	n := len(data) / 8
	if n > 2048 {
		n = 2048
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return y
}

func encodeSeries(y []float64) []byte {
	data := make([]byte, 8*len(y))
	for i, v := range y {
		binary.LittleEndian.PutUint64(data[i*8:], math.Float64bits(v))
	}
	return data
}

// FuzzKneedle throws arbitrary series (NaN, ±Inf, constant, empty,
// length-1) and window/order/curvature combinations at Detect. Detect may
// reject an input with an error, but it must never panic, and a success
// must be well-formed: intermediate curves of the input length and knees
// that reference real input points, sorted by descending sharpness.
func FuzzKneedle(f *testing.F) {
	f.Add(encodeSeries(nil), 0, 0, false)
	f.Add(encodeSeries([]float64{1}), 0, 0, false)
	f.Add(encodeSeries([]float64{2, 2, 2, 2, 2, 2, 2, 2}), 5, 2, false)
	f.Add(encodeSeries([]float64{0, 10, 17, 21, 23, 24, 24.5, 24.8}), 5, 2, false)
	f.Add(encodeSeries([]float64{0, 10, 17, 21, 23, 24, 24.5, 24.8}), 5, 2, true)
	f.Add(encodeSeries([]float64{math.NaN(), 1, math.Inf(1), 3, math.Inf(-1), 5, 6}), 5, 2, false)
	f.Add(encodeSeries([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}), 9, 8, false)
	f.Add(encodeSeries([]float64{0, 1, 2, 3, 4}), -3, -1, false)

	f.Fuzz(func(t *testing.T, data []byte, window, order int, convex bool) {
		y := decodeSeries(data)
		x := make([]float64, len(y))
		for i := range x {
			x[i] = float64(i)
		}
		opt := Options{SmoothWindow: window, SmoothOrder: order}
		if convex {
			opt.Curvature = Convex
		}
		res, err := Detect(x, y, opt)
		if err != nil {
			if len(y) < 5 && err != ErrTooShort {
				// Short series must fail with the sentinel so callers can
				// distinguish "not enough ramp data" from real errors.
				t.Fatalf("short series: got %v, want ErrTooShort", err)
			}
			return
		}
		n := len(y)
		if len(res.Smoothed) != n || len(res.NormX) != n || len(res.NormY) != n || len(res.Difference) != n {
			t.Fatalf("curve lengths %d/%d/%d/%d, want all %d",
				len(res.Smoothed), len(res.NormX), len(res.NormY), len(res.Difference), n)
		}
		for i, k := range res.Knees {
			if k.Index < 0 || k.Index >= n {
				t.Fatalf("knee %d: index %d out of range [0,%d)", i, k.Index, n)
			}
			if k.X != x[k.Index] {
				t.Fatalf("knee %d: X=%v but x[%d]=%v", i, k.X, k.Index, x[k.Index])
			}
			if math.IsNaN(k.Difference) {
				// Local-maximum detection compares against both neighbors;
				// NaN differences can never qualify.
				t.Fatalf("knee %d has NaN difference", i)
			}
			if i > 0 && k.Difference > res.Knees[i-1].Difference {
				t.Fatalf("knees not sorted by descending difference at %d: %v > %v",
					i, k.Difference, res.Knees[i-1].Difference)
			}
		}
		if best, ok := res.Best(); ok != (len(res.Knees) > 0) {
			t.Fatal("Best() disagrees with Knees about emptiness")
		} else if ok && best != res.Knees[0] {
			t.Fatal("Best() is not the first knee")
		}
	})
}
