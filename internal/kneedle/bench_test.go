package kneedle

import (
	"math/rand"
	"testing"
)

func BenchmarkDetect(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 600
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i + 1)
		v := x[i]
		if v > 400 {
			v = 400 + 0.05*(v-400)
		}
		y[i] = v * (1 + 0.02*r.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(x, y, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
