// Package kneedle implements the Kneedle knee/elbow detection algorithm of
// Satopaa et al. (ICDCSW '11), as specialised by the monitorless paper
// (§2.2) for locating the saturation point of a KPI-vs-load curve:
//
//  1. smooth f with a Savitzky-Golay filter,
//  2. normalize the points to the unit square,
//  3. compute the difference curve d_i = β_i − α_i,
//  4. candidate knees are the local maxima of the difference curve.
package kneedle

import (
	"errors"
	"fmt"

	"math"

	"monitorless/internal/smooth"
)

// Curvature selects the expected concavity of the input curve.
type Curvature int

const (
	// Concave marks curves that rise quickly then flatten (throughput vs
	// load); the paper's default.
	Concave Curvature = iota
	// Convex marks curves that stay flat then rise quickly (response time
	// vs load). The paper's mirroring trick (§2.2) is applied.
	Convex
)

// Options configures knee detection.
type Options struct {
	// SmoothWindow is the Savitzky-Golay window (odd). Zero selects a
	// window of roughly 1/10 of the series length (at least 5).
	SmoothWindow int
	// SmoothOrder is the polynomial order (default 2).
	SmoothOrder int
	// Curvature declares the curve shape (default Concave).
	Curvature Curvature
}

// Knee describes one detected candidate knee.
type Knee struct {
	// Index into the input series.
	Index int
	// X and Y are the original (unnormalized) coordinates of the knee.
	X, Y float64
	// Difference is the normalized difference-curve value at the knee;
	// larger means a sharper knee.
	Difference float64
}

// Result carries the detection output and the intermediate curves, which
// the paper recommends inspecting visually (we expose them for Figure 2).
type Result struct {
	// Smoothed is the Savitzky-Golay smoothed y series.
	Smoothed []float64
	// NormX, NormY are the unit-square normalized coordinates.
	NormX, NormY []float64
	// Difference is the β−α difference curve.
	Difference []float64
	// Knees lists candidate knees sorted by descending difference value.
	Knees []Knee
}

// ErrTooShort is returned for series that cannot hold a smoothing window.
var ErrTooShort = errors.New("kneedle: series too short")

// ErrFlat is returned when the series has no x or y spread to normalize.
var ErrFlat = errors.New("kneedle: flat series (no spread to normalize)")

// Detect runs the Kneedle pipeline on the discrete function f(x_i) = y_i.
// x must be strictly increasing.
func Detect(x, y []float64, opt Options) (*Result, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("kneedle: len(x)=%d != len(y)=%d", len(x), len(y))
	}
	n := len(x)
	if n < 5 {
		return nil, ErrTooShort
	}
	for i := 1; i < n; i++ {
		if x[i] <= x[i-1] {
			return nil, fmt.Errorf("kneedle: x must be strictly increasing (violated at %d)", i)
		}
	}

	window := opt.SmoothWindow
	if window == 0 {
		window = n / 10
		if window < 5 {
			window = 5
		}
		if window%2 == 0 {
			window++
		}
	}
	if window >= n {
		window = n
		if window%2 == 0 {
			window--
		}
	}
	order := opt.SmoothOrder
	if order == 0 {
		order = 2
	}
	if order >= window {
		order = window - 1
	}

	sm, err := smooth.Smooth(y, window, order)
	if err != nil {
		return nil, fmt.Errorf("kneedle: smoothing: %w", err)
	}

	// Mirror for convex curves so the concave machinery applies (§2.2).
	ys := make([]float64, n)
	copy(ys, sm)
	xs := make([]float64, n)
	copy(xs, x)
	if opt.Curvature == Convex {
		maxY := maxOf(ys)
		for i := range ys {
			ys[i] = maxY - ys[i]
		}
		maxX := xs[n-1]
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			xs[i], xs[j] = maxX-xs[j], maxX-xs[i]
			ys[i], ys[j] = ys[j], ys[i]
		}
	}

	normX, err := normalizeUnit(xs)
	if err != nil {
		return nil, err
	}
	normY, err := normalizeUnit(ys)
	if err != nil {
		return nil, err
	}

	diff := make([]float64, n)
	for i := range diff {
		diff[i] = normY[i] - normX[i]
	}

	var knees []Knee
	for i := 1; i < n-1; i++ {
		if diff[i] > diff[i-1] && diff[i] >= diff[i+1] {
			idx := i
			if opt.Curvature == Convex {
				idx = n - 1 - i // undo the mirroring
			}
			knees = append(knees, Knee{
				Index:      idx,
				X:          x[idx],
				Y:          sm[idx],
				Difference: diff[i],
			})
		}
	}
	// Sort by descending sharpness (insertion sort; candidate lists are tiny).
	for i := 1; i < len(knees); i++ {
		for j := i; j > 0 && knees[j].Difference > knees[j-1].Difference; j-- {
			knees[j], knees[j-1] = knees[j-1], knees[j]
		}
	}

	return &Result{
		Smoothed:   sm,
		NormX:      normX,
		NormY:      normY,
		Difference: diff,
		Knees:      knees,
	}, nil
}

// Best returns the sharpest knee, mirroring the paper's "manually choose
// the local maximum" step with the sensible automatic default.
func (r *Result) Best() (Knee, bool) {
	if len(r.Knees) == 0 {
		return Knee{}, false
	}
	return r.Knees[0], true
}

func normalizeUnit(v []float64) ([]float64, error) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi-lo <= 1e-12*math.Max(1, math.Abs(hi)) {
		return nil, ErrFlat
	}
	out := make([]float64, len(v))
	scale := 1 / (hi - lo)
	for i, x := range v {
		out[i] = (x - lo) * scale
	}
	return out, nil
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
