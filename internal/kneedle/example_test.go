package kneedle_test

import (
	"fmt"

	"monitorless/internal/kneedle"
)

// A throughput curve that rises linearly to 100 req/s at load 100 and
// flattens afterwards: Kneedle locates the bend.
func ExampleDetect() {
	var x, y []float64
	for i := 1; i <= 200; i++ {
		x = append(x, float64(i))
		v := float64(i)
		if v > 100 {
			v = 100 + 0.05*(v-100)
		}
		y = append(y, v)
	}
	res, err := kneedle.Detect(x, y, kneedle.Options{SmoothWindow: 11})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	knee, _ := res.Best()
	fmt.Printf("knee near load %.0f\n", knee.X)
	// Output: knee near load 100
}
