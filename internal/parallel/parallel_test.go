package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]int32, n)
	if err := ForEach(n, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		out := make([]int, 0)
		got, err := Map(200, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		_ = workers
		for i, v := range got {
			if v != i*i {
				t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
			}
		}
		_ = out
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	// Several failing indices; the error must always be the lowest one,
	// exactly as the serial loop would have reported, independent of
	// scheduling. Repeat to shake out interleavings.
	fail := map[int]bool{7: true, 31: true, 90: true}
	for rep := 0; rep < 50; rep++ {
		err := Do(context.Background(), 8, 100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("rep %d: err = %v, want task 7 failed", rep, err)
		}
	}
}

func TestDoStopsLaunchingAfterError(t *testing.T) {
	var executed atomic.Int64
	err := Do(context.Background(), 2, 10000, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := executed.Load(); got > 100 {
		t.Errorf("executed %d tasks after an early failure, want a prompt stop", got)
	}
}

func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, 4, 100000, func(i int) error {
			executed.Add(1)
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if executed.Load() >= 100000 {
		t.Error("cancellation did not stop the fan-out early")
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	if err := Do(context.Background(), 4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := Do(context.Background(), 4, -3, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n<0: %v", err)
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(-5)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative reset: DefaultWorkers = %d", got)
	}
}

// TestMapSchedulingIndependence runs the same seeded per-task computation
// under widely different pool widths and demands bit-identical results —
// the property every call site in the repo depends on.
func TestMapSchedulingIndependence(t *testing.T) {
	job := func(workers int) []float64 {
		stream := NewSeedStream(42)
		out := make([]float64, 64)
		err := Do(context.Background(), workers, 64, func(i int) error {
			rng := rand.New(rand.NewSource(stream.Seed(i)))
			s := 0.0
			for k := 0; k < 1000; k++ {
				s += rng.Float64()
			}
			out[i] = s
			return nil
		})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		return out
	}
	serial := job(1)
	for _, w := range []int{2, 8, 64} {
		got := job(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %v, serial %v", w, i, got[i], serial[i])
			}
		}
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	// Distinct indices must yield distinct seeds; the same (base, i) must
	// always yield the same seed; different bases must diverge.
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between indices %d and %d", prev, i)
		}
		seen[s] = i
	}
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Error("DeriveSeed not a pure function")
	}
	if DeriveSeed(7, 3) == DeriveSeed(8, 3) {
		t.Error("different bases must give different seeds")
	}
	// Sequential indices must not produce near-identical generator states:
	// the low bits should differ about half the time across the stream.
	diffBits := 0
	for i := 0; i < 64; i++ {
		x := uint64(DeriveSeed(1, i)) ^ uint64(DeriveSeed(1, i+1))
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if avg := float64(diffBits) / 64; avg < 20 || avg > 44 {
		t.Errorf("adjacent seeds differ by %.1f bits on average, want ~32", avg)
	}
}

func TestSeedStreamMatchesDeriveSeed(t *testing.T) {
	s := NewSeedStream(99)
	for i := 0; i < 10; i++ {
		if s.Seed(i) != DeriveSeed(99, i) {
			t.Fatalf("SeedStream.Seed(%d) diverges from DeriveSeed", i)
		}
	}
}

// FuzzDeriveSeed asserts the derivation never collides for small index
// windows regardless of base, and is insensitive to worker interleaving
// by construction (pure function of base and index).
func FuzzDeriveSeed(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(42))
	f.Add(int64(-1))
	f.Add(int64(1 << 62))
	f.Fuzz(func(t *testing.T, base int64) {
		seen := map[int64]bool{}
		for i := 0; i < 256; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("collision at base %d index %d", base, i)
			}
			seen[s] = true
		}
	})
}

func BenchmarkForEach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ForEach(256, func(int) error { return nil })
	}
}
