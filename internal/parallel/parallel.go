// Package parallel is the repository's shared bounded worker pool. Every
// embarrassingly parallel loop — cross-validation folds, grid-search
// candidates, Table 1 generation groups, the per-scenario experiment
// sweeps — fans out through this package so that concurrency is applied
// uniformly and, above all, *deterministically*: results are always
// assembled in task-index order, errors are reported for the lowest
// failing index (exactly what the equivalent serial loop would have
// returned), and per-task randomness is derived from a splitmix64-style
// seed stream keyed by task index, never by scheduling order. A run at
// GOMAXPROCS=1 and a run at GOMAXPROCS=64 therefore produce bit-identical
// output for the same seed; the determinism tests across the repo enforce
// this.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the pool width when positive. Zero (the
// default) sizes pools by runtime.GOMAXPROCS(0) at call time.
var defaultWorkers atomic.Int32

// SetDefaultWorkers fixes the default pool width for subsequent calls
// that do not pass an explicit worker count. n <= 0 restores the
// GOMAXPROCS default. The cmd-level -parallel flags call this once at
// startup.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers reports the pool width a zero-worker call would use.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most DefaultWorkers()
// goroutines and waits for all started tasks. If any tasks fail, the
// error of the lowest failing index is returned — the same error a
// serial loop over the indices would have stopped at — and the remaining
// unstarted tasks are skipped.
func ForEach(n int, fn func(i int) error) error {
	return Do(context.Background(), 0, n, fn)
}

// Map runs fn(i) for every i in [0, n) on at most DefaultWorkers()
// goroutines and returns the results in index order, independent of
// scheduling. On error it returns the error of the lowest failing index.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(context.Background(), 0, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Do is the full-control variant: it runs fn(i) for every i in [0, n) on
// at most `workers` goroutines (workers <= 0 selects DefaultWorkers())
// and stops launching new tasks once ctx is cancelled or a task fails.
// Tasks already started always run to completion, which guarantees that
// the lowest failing index has been executed by the time Do returns, so
// the returned error never depends on goroutine scheduling.
func Do(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline serial path: identical to the pre-pool loops.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		stopped  atomic.Bool
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// MapStream runs fn(i) for every i in [0, n) on at most DefaultWorkers()
// goroutines and hands each result to consume in strict index order, as
// soon as it and all of its predecessors have completed. consume never
// runs concurrently with itself, so the caller can fold results into a
// stream (e.g. append generated run groups to an on-disk chunk writer)
// without holding all n results in memory: workers stop claiming new
// task indices more than 2×workers ahead of the drain point, bounding
// in-flight results by the window rather than by n. On error — from fn
// or from consume — the error of the lowest failing index is returned
// (the same error the equivalent serial produce-then-consume loop would
// have stopped at); results past a failure are discarded, not consumed.
func MapStream[T any](n int, fn func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers := DefaultWorkers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline serial path: produce and consume in lockstep.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	window := 2 * workers
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		results   = make(map[int]T, window)
		next      int // next task index to claim
		drain     int // next index to hand to consume
		consuming bool
		firstIdx  = n
		firstErr  error
		failed    bool
		wg        sync.WaitGroup
	)
	record := func(i int, err error) {
		// Callers hold mu.
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		failed = true
		cond.Broadcast()
	}
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			for !failed && next < n && next >= drain+window {
				cond.Wait()
			}
			if failed || next >= n {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()

			v, err := fn(i)

			mu.Lock()
			if err != nil {
				record(i, err)
				mu.Unlock()
				return
			}
			results[i] = v
			// Drain every consecutive completed result starting at the
			// drain point. The `consuming` flag serializes consumers: a
			// worker that finds another one mid-consume leaves its result
			// in the map and goes back to producing — the active consumer
			// will pick it up on its next loop iteration.
			if !consuming {
				consuming = true
				for !failed {
					rv, ok := results[drain]
					if !ok {
						break
					}
					delete(results, drain)
					idx := drain
					mu.Unlock()
					cerr := consume(idx, rv)
					mu.Lock()
					if cerr != nil {
						record(idx, cerr)
						break
					}
					drain++
					cond.Broadcast()
				}
				consuming = false
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return firstErr
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix generator: a
// bijective avalanche function whose outputs over sequential inputs are
// statistically independent streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed derives the i-th seed of the stream rooted at base. Derived
// seeds depend only on (base, i) — never on which worker ran the task or
// in what order — and nearby indices yield decorrelated seeds, unlike
// base+i arithmetic which feeds near-identical states to simple PRNGs.
func DeriveSeed(base int64, i int) int64 {
	return int64(splitmix64(splitmix64(uint64(base)) + uint64(i)))
}

// SeedStream hands out per-task seeds for one fan-out site.
type SeedStream struct {
	base int64
}

// NewSeedStream roots a stream at the given base seed.
func NewSeedStream(base int64) SeedStream { return SeedStream{base: base} }

// Seed returns the seed for task index i.
func (s SeedStream) Seed(i int) int64 { return DeriveSeed(s.base, i) }
