// Benchmarks regenerating every table and figure of the paper. Each
// benchmark drives the same code path as cmd/experiments at the small
// scale, so `go test -bench=. -benchmem` reproduces the full evaluation
// and reports its cost. BenchmarkPredictionLatency measures the paper's
// headline per-sample classification time (Table 3 reports 40.6 ms for
// the random forest including feature extraction overhead of ~28 ms).
package monitorless_test

import (
	"sync"
	"testing"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/experiments"
)

// benchScale trims the Small preset further so individual benchmark
// iterations stay in the seconds range.
func benchScale() experiments.Scale {
	s := experiments.Small()
	s.TrainDuration = 250
	s.RampSeconds = 200
	s.ElggDuration = 400
	s.TeaStoreDuration = 1000
	s.AutoscaleDuration = 1000
	s.Trees = 30
	return s
}

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error

	benchElggOnce sync.Once
	benchElgg     *experiments.EvalData
	benchElggErr  error

	benchTeaOnce sync.Once
	benchTea     *experiments.EvalData
	benchTeaErr  error
)

func sharedCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() { benchCtx, benchCtxErr = experiments.NewContext(benchScale()) })
	if benchCtxErr != nil {
		b.Fatalf("context: %v", benchCtxErr)
	}
	return benchCtx
}

func sharedElgg(b *testing.B) *experiments.EvalData {
	b.Helper()
	ctx := sharedCtx(b)
	benchElggOnce.Do(func() { benchElgg, benchElggErr = experiments.CollectElgg(ctx) })
	if benchElggErr != nil {
		b.Fatalf("elgg: %v", benchElggErr)
	}
	return benchElgg
}

func sharedTeaStore(b *testing.B) *experiments.EvalData {
	b.Helper()
	ctx := sharedCtx(b)
	benchTeaOnce.Do(func() { benchTea, benchTeaErr = experiments.CollectTeaStore(ctx) })
	if benchTeaErr != nil {
		b.Fatalf("teastore: %v", benchTeaErr)
	}
	return benchTea
}

// BenchmarkFigure2_Kneedle regenerates the Figure 2 labeling walk-through:
// ramp experiment, Savitzky-Golay smoothing, Kneedle knee detection.
func BenchmarkFigure2_Kneedle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if fig.KneeX < 500 || fig.KneeX > 1100 {
			b.Fatalf("knee at %.0f, want near ~857", fig.KneeX)
		}
	}
}

// BenchmarkTable1_Datagen regenerates a slice of the Table 1 corpus (two
// runs including a parallel pair) end to end: ramp threshold discovery,
// workload execution, metric synthesis, labeling.
func BenchmarkTable1_Datagen(b *testing.B) {
	var cfgs []dataset.RunConfig
	for _, c := range dataset.Table1() {
		if c.ID == 3 || c.ID == 18 {
			cfgs = append(cfgs, c)
		}
	}
	for i := 0; i < b.N; i++ {
		rep, err := dataset.Generate(cfgs, dataset.GenOptions{Duration: 200, RampSeconds: 150, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Dataset.Samples) == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkTable2_GridSearch runs the hyper-parameter grid search for the
// random-forest contender over the engineered training set.
func BenchmarkTable2_GridSearch(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(ctx, 1200)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("got %d grid rows", len(rows))
		}
	}
}

// BenchmarkTable3_Algorithms trains all six contenders at their chosen
// hyper-parameters and scores them on the Elgg validation run.
func BenchmarkTable3_Algorithms(b *testing.B) {
	ctx := sharedCtx(b)
	elgg := sharedElgg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(ctx, elgg)
		if err != nil {
			b.Fatal(err)
		}
		best := rows[0]
		for _, r := range rows {
			if r.F1 > best.F1 {
				best = r
			}
		}
		if best.Algorithm != "Random Forest" && best.F1 > 0 {
			b.Logf("note: %s beat Random Forest this round (F1 %.3f)", best.Algorithm, best.F1)
		}
	}
}

// BenchmarkTable4_Importances extracts and ranks the model's feature
// importances (the Table 4 listing).
func BenchmarkTable4_Importances(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(ctx, 30)
		if len(rows) == 0 {
			b.Fatal("no importances")
		}
	}
}

// BenchmarkTable5_ThreeTier scores the baselines and monitorless on the
// Elgg three-tier run.
func BenchmarkTable5_ThreeTier(b *testing.B) {
	ctx := sharedCtx(b)
	elgg := sharedElgg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Table5(ctx, elgg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) != 5 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkTable6_TeaStore scores the multi-tenant TeaStore run.
func BenchmarkTable6_TeaStore(b *testing.B) {
	ctx := sharedCtx(b)
	tea := sharedTeaStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, _, err := experiments.Table6(ctx, tea)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) != 5 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkFigure3_Series derives the per-service prediction markers from
// the TeaStore run.
func BenchmarkFigure3_Series(b *testing.B) {
	ctx := sharedCtx(b)
	tea := sharedTeaStore(b)
	_, perInst, err := experiments.Table6(ctx, tea)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure3(tea, perInst)
		if len(fig.Services) < 8 {
			b.Fatal("missing service rows")
		}
	}
}

// BenchmarkTable7_Autoscaling runs the full autoscaling policy comparison
// (seven policies, each on a fresh environment).
func BenchmarkTable7_Autoscaling(b *testing.B) {
	ctx := sharedCtx(b)
	tea := sharedTeaStore(b)
	table6, _, err := experiments.Table6(ctx, tea)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7(ctx, table6)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("got %d policies", len(rows))
		}
	}
}

// BenchmarkTable8_Sockshop scores the 14-service Sockshop run.
func BenchmarkTable8_Sockshop(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := experiments.CollectSockshop(ctx)
		if err != nil {
			b.Fatal(err)
		}
		table, err := experiments.Table8(ctx, data)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) != 5 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkPredictionLatency measures the online per-sample inference
// cost: feature engineering of the trailing window plus the forest vote
// (the paper reports ~28 ms extraction + 40.6 ms classification).
func BenchmarkPredictionLatency(b *testing.B) {
	ctx := sharedCtx(b)
	elgg := sharedElgg(b)
	m := ctx.Model
	w := m.WindowSize()
	rows := elgg.Raw.Runs[0].Rows
	if len(rows) < w {
		b.Fatal("run shorter than the model window")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := i % (len(rows) - w)
		if _, _, err := m.PredictWindow(rows[start : start+w]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainModel measures end-to-end training (pipeline fit + forest)
// on the full Table 1 corpus.
func BenchmarkTrainModel(b *testing.B) {
	ctx := sharedCtx(b)
	cfg := benchScale().TrainConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(ctx.Report.Dataset, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
