// Package monitorless is a faithful, self-contained Go reproduction of
// "Monitorless: Predicting Performance Degradation in Cloud Applications
// with Machine Learning" (Grohmann, Nicholson, Omana Iglesias, Kounev,
// Lugones — Middleware '19).
//
// Monitorless trains a binary classifier on application-agnostic platform
// metrics (host-level PCP metrics plus per-container cgroup metrics) to
// predict whether a containerized service instance is saturated — without
// monitoring application KPIs in production. Application KPIs are used
// only offline, to label training data via Kneedle knee detection on the
// throughput-vs-load curve of a linear ramp experiment.
//
// The package re-exports the high-level API; the full machinery lives in
// the internal packages:
//
//   - internal/workload, cluster, apps, pcp — the simulated substrate
//     (load patterns, nodes/cgroups, queueing-theoretic services, and the
//     Performance Co-Pilot-style metric collection);
//   - internal/smooth, kneedle, label — the §2.2 labeling methodology;
//   - internal/dataset — the Table 1 training corpus generator;
//   - internal/features — the §3.3 feature-engineering pipeline;
//   - internal/ml/... — from-scratch learners (random forest, CART,
//     AdaBoost, gradient-boosted trees, logistic regression, linear SVC,
//     MLP) plus scoring and grouped cross-validation;
//   - internal/core — model training, persistence and the online
//     orchestrator;
//   - internal/autoscale — the §4.2.2 autoscaling study;
//   - internal/experiments — one driver per paper table/figure.
//
// Quickstart:
//
//	report, _ := monitorless.GenerateTrainingData(monitorless.DataOptions{})
//	model, _ := monitorless.Train(report.Dataset, monitorless.DefaultTrainConfig())
//	orch := monitorless.NewOrchestrator(model)
//	// feed pcp observations → orch.Ingest(obs); read orch.AppPredictions()
package monitorless

import (
	"fmt"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/pcp"
)

// Model is a trained monitorless saturation classifier.
type Model = core.Model

// TrainConfig bundles the feature pipeline layout and random-forest
// hyper-parameters.
type TrainConfig = core.TrainConfig

// Orchestrator ingests per-instance metric vectors, infers saturation per
// container and aggregates per application with a logical OR.
type Orchestrator = core.Orchestrator

// Prediction is one instance's latest inference.
type Prediction = core.Prediction

// Dataset is a labeled training corpus.
type Dataset = dataset.Dataset

// DataReport carries a generated corpus plus the per-run Υ thresholds.
type DataReport = dataset.Report

// Observation is one tick's processed per-instance metric vectors.
type Observation = pcp.Observation

// DefaultTrainConfig returns the paper's selected configuration: the
// normalize → filter → time+products → filter pipeline and a 250-tree
// random forest (information gain, 20 samples per leaf, threshold 0.4).
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// Train fits the feature pipeline and classifier on a labeled dataset.
func Train(ds *Dataset, cfg TrainConfig) (*Model, error) { return core.Train(ds, cfg) }

// LoadModel deserializes a model saved with Model.Save.
var LoadModel = core.Load

// LoadModelBytes deserializes a model from a byte slice.
var LoadModelBytes = core.LoadBytes

// NewOrchestrator returns an online orchestrator over a trained model.
func NewOrchestrator(m *Model) *Orchestrator { return core.NewOrchestrator(m) }

// DataOptions sizes training-data generation. The zero value generates
// the paper's full 25-run Table 1 corpus at default durations.
type DataOptions struct {
	// Runs restricts generation to these Table 1 run IDs (nil = all 25).
	Runs []int
	// Duration is the measured seconds per run (default 900).
	Duration int
	// RampSeconds sizes the threshold-discovery ramps (default 500).
	RampSeconds int
	// Seed drives workload jitter and measurement noise.
	Seed int64
}

// GenerateTrainingData executes the Table 1 training configurations on
// the simulator and returns the labeled corpus.
func GenerateTrainingData(opt DataOptions) (*DataReport, error) {
	cfgs := dataset.Table1()
	if len(opt.Runs) > 0 {
		want := make(map[int]bool, len(opt.Runs))
		for _, id := range opt.Runs {
			want[id] = true
		}
		var filtered []dataset.RunConfig
		for _, c := range cfgs {
			if want[c.ID] {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			return nil, fmt.Errorf("monitorless: no Table 1 runs match %v", opt.Runs)
		}
		cfgs = filtered
	}
	return dataset.Generate(cfgs, dataset.GenOptions{
		Duration:    opt.Duration,
		RampSeconds: opt.RampSeconds,
		Seed:        opt.Seed,
	})
}
