// Command ooc_bench is the out-of-core data plane benchmark lane: it caps
// the Go heap with debug.SetMemoryLimit, streams a Table 1 corpus several
// times larger than that cap to disk chunks (datagen's -spill-dir path),
// trains the histogram-forest model directly on the spilled corpus, and
// records the process's peak RSS into BENCH_ooc.json. The lane fails if
// the corpus missed its target size or if peak RSS climbed past half the
// corpus — the signal that some stage materialized the data it was
// supposed to stream.
//
// Usage:
//
//	go run ./scripts/ooc_bench                      # 10x corpus, BENCH_ooc.json
//	go run ./scripts/ooc_bench -ratio 4 -memlimit-mb 48 -out /tmp/ooc.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
	"monitorless/internal/pcp"
)

// report is the BENCH_ooc.json shape.
type report struct {
	MemLimitBytes   int64   `json:"memlimit_bytes"`
	TargetRatio     float64 `json:"target_ratio"`
	CorpusRows      int     `json:"corpus_rows"`
	CorpusCols      int     `json:"corpus_cols"`
	CorpusBytes     int64   `json:"corpus_bytes"`
	ChunkRows       int     `json:"chunk_rows"`
	NumChunks       int     `json:"num_chunks"`
	RunDuration     int     `json:"run_duration_s"`
	GenSeconds      float64 `json:"gen_seconds"`
	GenPeakRSSBytes int64   `json:"gen_peak_rss_bytes"`
	TrainSeconds    float64 `json:"train_seconds"`
	PeakRSSBytes    int64   `json:"peak_rss_bytes"`
	CorpusOverLimit float64 `json:"corpus_over_limit"`
	PeakOverLimit   float64 `json:"peak_rss_over_limit"`
	PeakOverCorpus  float64 `json:"peak_rss_over_corpus"`
	TrainSamples    int     `json:"train_samples"`
	EngineeredCols  int     `json:"engineered_cols"`
	ForestTrees     int     `json:"forest_trees"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ooc_bench: ")

	var (
		memlimitMB = flag.Int("memlimit-mb", 48, "GOMEMLIMIT cap in MiB")
		ratio      = flag.Float64("ratio", 10, "target corpus size as a multiple of the memory limit")
		chunkRows  = flag.Int("chunk-rows", 1024, "rows per spilled chunk")
		outPath    = flag.String("out", "BENCH_ooc.json", "JSON report path")
		dir        = flag.String("dir", "", "spill directory (default: a fresh temp dir, removed afterwards)")
	)
	flag.Parse()
	if err := run(*memlimitMB, *ratio, *chunkRows, *outPath, *dir); err != nil {
		log.Fatal(err)
	}
}

func run(memlimitMB int, ratio float64, chunkRows int, outPath, dir string) error {
	if memlimitMB < 16 || ratio < 1 || chunkRows < 1 {
		return fmt.Errorf("memlimit-mb must be >= 16, ratio >= 1, chunk-rows >= 1")
	}
	limit := int64(memlimitMB) << 20
	debug.SetMemoryLimit(limit)

	if dir == "" {
		d, err := os.MkdirTemp("", "monitorless-ooc-")
		if err != nil {
			return err
		}
		dir = d
		defer os.RemoveAll(d)
	}

	// Size the corpus from the target ratio: Table 1's 25 runs sampled at
	// 1 Hz yield duration-5 rows each over the default 267-column catalog.
	cfgs := dataset.Table1()
	cols := len(pcp.DefaultCatalog().CombinedDefs())
	wantRows := int(ratio*float64(limit))/(cols*8) + 1
	duration := wantRows/len(cfgs) + 6

	fmt.Printf("memlimit %d MiB, target %.0fx -> %d rows x %d cols (%d s per run), chunks of %d rows\n",
		memlimitMB, ratio, wantRows, cols, duration, chunkRows)

	genStart := time.Now()
	fr, _, err := dataset.GenerateFrame(cfgs, dataset.GenOptions{
		Duration:    duration,
		RampSeconds: 250,
		Seed:        42,
		SpillDir:    dir,
		ChunkRows:   chunkRows,
	})
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	defer fr.Close()
	genSecs := time.Since(genStart).Seconds()
	genPeak := peakRSS()
	corpusBytes := int64(fr.Rows()) * int64(fr.NumCols()) * 8
	fmt.Printf("generated %d rows (%.1f MiB, %d chunks) in %.1fs, peak RSS %.1f MiB\n",
		fr.Rows(), float64(corpusBytes)/(1<<20), fr.NumChunks(), genSecs, mib(genPeak))

	// Lean out-of-core layout: normalize + one importance filter, then the
	// histogram forest — every stage that can stream, streaming. Time
	// features and products are orthogonal to the storage seam and would
	// only slow the lane down.
	cfg := core.TrainConfig{
		Pipeline: features.Config{
			Normalize:   true,
			Reduce1:     features.ReduceFilter,
			FilterTopK:  30,
			FilterTrees: 10,
			Seed:        42,
		},
		Forest: forest.Config{
			NumTrees:       40,
			MinSamplesLeaf: 20,
			Criterion:      tree.Entropy,
			Splitter:       tree.Hist,
			Seed:           42,
		},
		Threshold: 0.4,
	}
	trainStart := time.Now()
	m, err := core.TrainFrame(fr, cfg)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	trainSecs := time.Since(trainStart).Seconds()
	peak := peakRSS()
	fmt.Printf("trained %d hist trees on %d samples in %.1fs, peak RSS %.1f MiB\n",
		cfg.Forest.NumTrees, m.TrainSamples, trainSecs, mib(peak))

	rep := report{
		MemLimitBytes:   limit,
		TargetRatio:     ratio,
		CorpusRows:      fr.Rows(),
		CorpusCols:      fr.NumCols(),
		CorpusBytes:     corpusBytes,
		ChunkRows:       chunkRows,
		NumChunks:       fr.NumChunks(),
		RunDuration:     duration,
		GenSeconds:      genSecs,
		GenPeakRSSBytes: genPeak,
		TrainSeconds:    trainSecs,
		PeakRSSBytes:    peak,
		CorpusOverLimit: float64(corpusBytes) / float64(limit),
		TrainSamples:    m.TrainSamples,
		EngineeredCols:  m.Pipeline.NumOutputs(),
		ForestTrees:     cfg.Forest.NumTrees,
	}
	if peak > 0 {
		rep.PeakOverLimit = float64(peak) / float64(limit)
		rep.PeakOverCorpus = float64(peak) / float64(corpusBytes)
	}
	blob, _ := json.MarshalIndent(rep, "", "  ")
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", outPath)

	if rep.CorpusOverLimit < ratio {
		return fmt.Errorf("corpus only %.1fx the memory limit, want >= %.0fx", rep.CorpusOverLimit, ratio)
	}
	// Flatness gate: the whole point of the chunked plane is that neither
	// generation nor training ever holds the corpus. Peak RSS past half
	// the corpus means some stage densified it.
	if peak > 0 && peak > corpusBytes/2 {
		return fmt.Errorf("peak RSS %.1f MiB exceeds half the %.1f MiB corpus — a stage materialized the data",
			mib(peak), float64(corpusBytes)/(1<<20))
	}
	if peak == 0 {
		fmt.Println("note: /proc/self/status unavailable; RSS flatness not asserted")
	}
	return nil
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

// peakRSS reads the process high-water RSS (VmHWM) from /proc/self/status,
// 0 where /proc does not exist.
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
