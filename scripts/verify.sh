#!/usr/bin/env bash
# Repo verification: the tier-1 lane (build + vet + tests) plus the race
# lane added with the parallel execution layer. Everything the worker
# pool touches (CV folds, dataset run groups, experiment sweeps) runs
# under the race detector; -count=1 defeats the test cache so data races
# cannot hide behind cached passes.
#
# Usage: scripts/verify.sh [-short]
set -euo pipefail
cd "$(dirname "$0")/.."

short=""
if [[ "${1:-}" == "-short" ]]; then
    short="-short"
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test $short ./...

echo "==> go test -race -count=1 ./... (race lane)"
go test -race -count=1 $short ./...

echo "verify: all lanes green"
