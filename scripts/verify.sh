#!/usr/bin/env bash
# Repo verification: the tier-1 lane (build + vet + tests), the race
# lane added with the parallel execution layer, the allocation lanes,
# the benchmark smoke lane, and the HTTP serving smoke lane. Everything
# the worker pool touches (CV folds, dataset run groups, experiment
# sweeps) runs under the race detector; -count=1 defeats the test cache
# so data races cannot hide behind cached passes. The allocation lanes
# re-run the testing.AllocsPerRun budgets on the columnar frame ops
# (zero-copy views must stay view-header-only; column access must stay
# allocation-free), on the tree builders (the arena must keep tree
# growth free of per-node allocations), and on the simulator hot loop
# (CPU arbitration, the engine tick arena, and frame-native metric
# collection must all stay allocation-free at steady state) outside the
# race detector, whose instrumentation would distort the counts. The
# dataset golden lane proves the allocation work never changed a bit of
# output: generated frames must hash to the recorded fixture at several
# worker counts. The benchmark smoke lane
# runs the tree/forest fit and predict benchmarks once (-benchtime=1x):
# not a timing gate on the 1-core CI box, but it keeps the benchmarks
# compiling and executing so a perf regression can always be measured.
# The smoke lane launches the real cmd/serve binary on a loopback port,
# streams observations over HTTP, asserts predictions plus non-zero
# /metrics counters, and requires a clean SIGTERM drain.
# The serving-scale lanes added with the sharded plane: the sharded
# ingest/scrape race tests under -race, the steady-state ingest
# allocation budget, a short FuzzWireDecode run over the checked-in
# corpus plus fresh mutations, and a loadgen smoke that drives 1k
# simulated instances for 10 ticks of binary batch frames against the
# real serve binary and requires non-zero throughput plus a clean drain.
# The lifecycle lanes added with the model lifecycle plane: concurrent
# ingest + drift harvest + observability reads + warm hot swaps under
# -race (the swap-locking proof), and the swap-churn allocation lane,
# which holds the per-sample ingest budget while hot swaps land between
# batches — a swap must never deoptimize the steady-state path.
# The out-of-core lanes added with the chunked data plane: the spill lane
# re-runs the byte-identity goldens (dataset frame bytes, Table 2 parity)
# with MONITORLESS_FORCE_SPILL routing generation and training through
# disk-backed chunks; the no-mmap lane re-runs the frame store tests with
# the pread fallback forced; and the ooc_bench lane generates + trains on
# a corpus 4x a capped GOMEMLIMIT and fails if peak RSS shows any stage
# materialized the corpus.
# The quantized-inference lanes added with the compiled predict plane:
# the parity lane re-runs the bit-identity suite (unit columns plus the
# engineered Table 2 corpus at parallelism 1/4/8) with -count=1; the
# predict allocation lane holds the zero-allocs/op budget on the batch
# path for the float, quant-serial and quant-sharded regimes; and the
# bench-regression lane runs scripts/predbench fresh, gates the quant
# speedup over the float walk on identical trees, then diffs against the
# committed BENCH_predict.json with scripts/benchdiff normalized by the
# float-walk benchmark (-ratio-of), failing any >15% relative regression
# — the ratio gate is invariant to the host's absolute speed drifting
# between runs; the tiny 32-row shard micro-benchmark is reported but
# skipped from the gate as known-noisy.
# The columnar-ingest lanes added with the vectorized ingest plane: the
# equivalence lane re-runs the batch-vs-serial bit-identity suite (the
# liveness-plan masking must never change an output bit), a short
# FuzzStepBatchVsSerial run, the worker/shard-count invariance of the
# fused feature→bin-code route, the mid-batch rejection consistency
# test, and the step-batch/ingest allocation budgets; the ingestbench
# lane runs scripts/ingestbench fresh, gates the columnar batch feature
# step at >=1.5x over per-sample StepInto+SetRow, then diffs against the
# committed BENCH_ingest.json with scripts/benchdiff normalized by the
# serial feature stage (-ratio-of), failing any >15% relative regression;
# the two ~500ns/row predict micro-stages are reported but skipped from
# the gate as known-noisy (the predict plane has its own predbench gate).
#
# Usage: scripts/verify.sh [-short]
set -euo pipefail
cd "$(dirname "$0")/.."

short=""
if [[ "${1:-}" == "-short" ]]; then
    short="-short"
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test $short ./...

echo "==> go test -race -count=1 ./... (race lane)"
go test -race -count=1 $short ./...

echo "==> go test -race -count=1 ./internal/cluster/ ./internal/apps/ ./internal/pcp/ (simulator race lane)"
go test -race -count=1 ./internal/cluster/ ./internal/apps/ ./internal/pcp/

echo "==> go test -run TestFrameOpAllocations -count=1 ./internal/frame/ (allocation-regression lane)"
go test -run TestFrameOpAllocations -count=1 -v ./internal/frame/

echo "==> go test -run TestTreeBuilderAllocations -count=1 ./internal/ml/tree/ (tree-arena allocation lane)"
go test -run TestTreeBuilderAllocations -count=1 -v ./internal/ml/tree/

echo "==> simulator allocation lane (arbitration, tick arena, frame-native collection must stay allocation-free)"
go test -run TestArbitrateAllocations -count=1 -v ./internal/cluster/
go test -run 'TestEngineTickAllocations' -count=1 -v ./internal/apps/
go test -run 'TestObserveTickAllocations|TestCollectSnapshotReuse' -count=1 -v ./internal/pcp/

echo "==> go test -run TestGenerateGoldenFrameBytes -count=1 ./internal/dataset/ (byte-identical dataset golden)"
go test -run TestGenerateGoldenFrameBytes -count=1 -v ./internal/dataset/

echo "==> benchmark smoke lane (-benchtime=1x)"
go test -run '^$' -bench 'BenchmarkTreeFit' -benchtime=1x ./internal/ml/tree/
go test -run '^$' -bench 'BenchmarkForest' -benchtime=1x ./internal/ml/forest/
go test -run '^$' -bench 'BenchmarkEngineTick' -benchtime=1x ./internal/apps/
go test -run '^$' -bench 'BenchmarkAgentObserveTick' -benchtime=1x ./internal/pcp/

echo "==> go test -race -count=1 -run 'TestShardedIngestRace|TestScrapeDuringIngestRace' ./internal/serving/ (sharded serving race lane)"
go test -race -count=1 -run 'TestShardedIngestRace|TestScrapeDuringIngestRace' -v ./internal/serving/

echo "==> go test -run TestIngestAllocations -count=1 ./internal/serving/ (ingest allocation lane)"
go test -run TestIngestAllocations -count=1 -v ./internal/serving/

echo "==> go test -race -count=1 -run 'TestLifecycleSwapRace|TestLifecycleEndToEndDriftRetrainSwap' ./internal/serving/ (lifecycle race lane)"
go test -race -count=1 -run 'TestLifecycleSwapRace|TestLifecycleEndToEndDriftRetrainSwap' -v ./internal/serving/

echo "==> go test -run 'TestSwapChurnAllocations|TestCellObserveAllocs|TestReservoirAddAllocs' -count=1 (lifecycle allocation lanes)"
go test -run TestSwapChurnAllocations -count=1 -v ./internal/serving/
go test -run 'TestCellObserveAllocs|TestReservoirAddAllocs' -count=1 -v ./internal/lifecycle/

echo "==> go test -fuzz FuzzWireDecode -fuzztime=5s ./internal/serving/ (wire decoder fuzz smoke)"
go test -run '^FuzzWireDecode$' -fuzz '^FuzzWireDecode$' -fuzztime=5s ./internal/serving/

echo "==> MONITORLESS_FORCE_SPILL=1 golden + parity (out-of-core byte-identity lane)"
MONITORLESS_FORCE_SPILL=1 go test -count=1 -run 'Golden|Parity' ./internal/frame/ ./internal/dataset/ ./internal/experiments/

echo "==> MONITORLESS_NO_MMAP=1 frame store tests (pread fallback lane)"
MONITORLESS_NO_MMAP=1 go test -count=1 ./internal/frame/

echo "==> go run ./scripts/ooc_bench -ratio 4 (out-of-core memory-flatness lane)"
go run ./scripts/ooc_bench -ratio 4 -memlimit-mb 48 -out /tmp/monitorless-ooc-bench.json

echo "==> quantized predict parity lane (bit-identity at workers 1/4/8)"
go test -count=1 -run 'TestQuant|TestHistForestCompilesFullyQuantized|TestExactForestPartialQuant' -v ./internal/ml/forest/
go test -count=1 -run TestTable2QuantBitIdentity $short ./internal/experiments/

echo "==> go test -run TestForestBatchPredictAllocations -count=1 ./internal/ml/forest/ (batch-predict allocation lane)"
go test -run TestForestBatchPredictAllocations -count=1 -v ./internal/ml/forest/

echo "==> columnar ingest equivalence lane (batch-vs-serial bit-identity, fused invariance, mid-batch rejection)"
go test -count=1 -run 'TestStepBatch|TestStateSlab|TestBatchPlan|TestStreamerMatchesBatch' ./internal/features/
go test -count=1 -run 'TestFusedIngestShardWorkerInvariance|TestMidBatchRejectionConsistency|TestInstanceStateBytesGauge|TestIngestFallbackCounter' ./internal/serving/

echo "==> go test -fuzz FuzzStepBatchVsSerial -fuzztime=5s ./internal/features/ (batch step fuzz smoke)"
go test -run '^FuzzStepBatchVsSerial$' -fuzz '^FuzzStepBatchVsSerial$' -fuzztime=5s ./internal/features/

echo "==> go test -run TestStepBatchAllocations -count=1 ./internal/features/ (step-batch allocation lane)"
go test -run TestStepBatchAllocations -count=1 -v ./internal/features/

echo "==> ingestbench + benchdiff (columnar ingest bench-regression lane, ratio-normalized)"
go run ./scripts/ingestbench -out /tmp/monitorless-ingestbench.json -min-speedup 1.5
go run ./scripts/benchdiff -old BENCH_ingest.json -new /tmp/monitorless-ingestbench.json \
    -max-regress 15 -ratio-of IngestFeatureSerial -skip IngestPredict

echo "==> predbench + benchdiff (quantized bench-regression lane, ratio-normalized)"
go run ./scripts/predbench -out /tmp/monitorless-predbench.json -min-speedup 1.5
go run ./scripts/benchdiff -old BENCH_predict.json -new /tmp/monitorless-predbench.json \
    -max-regress 15 -ratio-of PredictBatchDenseFloatHist -skip PredictShardQuant

echo "==> go run ./scripts/smoke (HTTP serving smoke lane)"
go run ./scripts/smoke

echo "==> go run ./cmd/loadgen (serving-scale smoke: 1k instances × 10 ticks of binary frames)"
go run ./cmd/loadgen -instances 1000 -ticks 10 -warmup 1 -batch 500 -out /tmp/monitorless-loadgen-smoke.json

echo "verify: all lanes green"
