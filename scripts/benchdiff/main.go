// Command benchdiff compares two BENCH_*.json reports and fails when a
// benchmark regressed past a threshold. It walks both files generically,
// collecting every object that carries a "benchmark" name plus a
// numeric "ns_row" or "ns_op" (directly or under an "after" sub-object),
// so it reads BENCH_predict.json and the older BENCH_treehist.json shape
// alike; benchmarks present in only one file are reported but never
// fail the diff.
//
// Absolute nanoseconds drift with the host's clock-for-clock speed
// between runs, so the regression gate supports normalization:
// -ratio-of NAME divides every metric by that benchmark's value in the
// same file before comparing. With -ratio-of set to the float-walk
// benchmark, the gate asks "did the quantized speedup shrink?", which is
// invariant to the machine being globally slower or faster that day.
//
// Usage:
//
//	go run ./scripts/benchdiff -old BENCH_predict.json -new /tmp/fresh.json -max-regress 15
//	go run ./scripts/benchdiff -old BENCH_predict.json -new /tmp/fresh.json \
//	    -max-regress 15 -ratio-of PredictBatchDenseFloatHist
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

type entry struct {
	name string
	ns   float64 // ns_row preferred, ns_op otherwise
	unit string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		oldPath    = flag.String("old", "", "baseline BENCH_*.json")
		newPath    = flag.String("new", "", "candidate BENCH_*.json")
		maxRegress = flag.Float64("max-regress", 15, "fail when a shared benchmark is more than this percent slower")
		ratioOf    = flag.String("ratio-of", "", "normalize each file's metrics by this benchmark's value in the same file (machine-speed-independent gate)")
		skip       = flag.String("skip", "", "comma-separated benchmark-name substrings reported but never failed (for known-noisy micro workloads)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("both -old and -new are required")
	}
	if err := run(*oldPath, *newPath, *maxRegress, *ratioOf, *skip); err != nil {
		log.Fatal(err)
	}
}

func run(oldPath, newPath string, maxRegress float64, ratioOf, skip string) error {
	oldE, err := load(oldPath)
	if err != nil {
		return err
	}
	newE, err := load(newPath)
	if err != nil {
		return err
	}
	if ratioOf != "" {
		if err := normalize(oldE, ratioOf, oldPath); err != nil {
			return err
		}
		if err := normalize(newE, ratioOf, newPath); err != nil {
			return err
		}
	}

	var skips []string
	for _, s := range strings.Split(skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skips = append(skips, s)
		}
	}
	skipped := func(name string) bool {
		for _, s := range skips {
			if strings.Contains(name, s) {
				return true
			}
		}
		return false
	}

	names := make([]string, 0, len(oldE))
	for name := range oldE {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures int
	for _, name := range names {
		o := oldE[name]
		n, ok := newE[name]
		if !ok {
			fmt.Printf("%-32s only in %s\n", name, oldPath)
			continue
		}
		deltaPct := (n.ns - o.ns) / o.ns * 100
		status := "ok"
		switch {
		case skipped(name):
			status = "skipped"
		case deltaPct > maxRegress:
			status = "REGRESSED"
			failures++
		}
		fmt.Printf("%-32s %12.2f -> %12.2f %-6s %+7.1f%%  %s\n", name, o.ns, n.ns, o.unit, deltaPct, status)
	}
	for name := range newE {
		if _, ok := oldE[name]; !ok {
			fmt.Printf("%-32s only in %s\n", name, newPath)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", failures, maxRegress)
	}
	fmt.Println("no regressions past threshold")
	return nil
}

func normalize(es map[string]entry, ref, path string) error {
	r, ok := es[ref]
	if !ok || r.ns == 0 {
		return fmt.Errorf("-ratio-of %s: benchmark not found (or zero) in %s", ref, path)
	}
	for name, e := range es {
		e.ns /= r.ns
		e.unit = "ratio"
		es[name] = e
	}
	return nil
}

// load parses any BENCH_*.json and collects benchmark entries from
// arbitrarily nested objects/arrays.
func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	es := map[string]entry{}
	walk(root, es)
	if len(es) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries found", path)
	}
	return es, nil
}

func walk(v any, es map[string]entry) {
	switch t := v.(type) {
	case map[string]any:
		if name, ok := t["benchmark"].(string); ok {
			// Metrics may sit alongside "benchmark" or under "after"
			// (the before/after report shape).
			src := t
			if after, ok := t["after"].(map[string]any); ok {
				src = after
			}
			if ns, ok := src["ns_row"].(float64); ok {
				es[name] = entry{name: name, ns: ns, unit: "ns/row"}
			} else if ns, ok := src["ns_op"].(float64); ok {
				es[name] = entry{name: name, ns: ns, unit: "ns/op"}
			}
		}
		for _, child := range t {
			walk(child, es)
		}
	case []any:
		for _, child := range t {
			walk(child, es)
		}
	}
}
