// Command predbench measures the forest batch-predict plane on the same
// workload as the committed ml/forest benchmarks (2000 rows × 50
// continuous features, 30 trees) and writes BENCH_predict.json: the
// float tree walk versus the compiled uint8-code path, dense, chunked,
// serial and serving-shard regimes, all from one process run so every
// number shares the same machine state. The float walk over the
// identical hist-trained ensemble is the "before" side; the quantized
// regimes are the "after"; speedup_quant_vs_float is their ratio, which
// stays meaningful even when the host's absolute clock-for-clock speed
// drifts between runs (scripts/benchdiff -ratio-of exploits exactly
// that).
//
// Usage:
//
//	go run ./scripts/predbench                         # BENCH_predict.json
//	go run ./scripts/predbench -out /tmp/pred.json -min-speedup 1.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"monitorless/internal/frame"
	"monitorless/internal/ml"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
)

const (
	benchRows  = 2000
	benchCols  = 50
	benchTrees = 30
	shardRows  = 32 // one serving-shard batch: the single-block inline regime
)

type result struct {
	Benchmark string  `json:"benchmark"`
	Rows      int     `json:"rows"`
	NsOp      int64   `json:"ns_op"`
	NsRow     float64 `json:"ns_row"`
	BytesOp   int64   `json:"bytes_op"`
	AllocsOp  int64   `json:"allocs_op"`
	Note      string  `json:"note,omitempty"`
}

type report struct {
	Description string `json:"description"`
	Machine     struct {
		Goos         string `json:"goos"`
		Goarch       string `json:"goarch"`
		CPU          string `json:"cpu"`
		CoresVisible int    `json:"cores_visible"`
	} `json:"machine"`
	Workload            string   `json:"workload"`
	SpeedupQuantVsFloat float64  `json:"speedup_quant_vs_float"`
	Results             []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("predbench: ")
	var (
		out        = flag.String("out", "BENCH_predict.json", "JSON report path")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless dense quant is at least this many times faster per row than the float walk on the same trees (0 = no gate)")
	)
	flag.Parse()
	if err := run(*out, *minSpeedup); err != nil {
		log.Fatal(err)
	}
}

// benchRow builds one result from a standard-library benchmark run over
// a whole-frame predict through the caller-owned-buffer entry point.
func benchRow(name string, f *forest.Forest, fr *frame.Frame, note string) result {
	dst := make([]float64, fr.Rows())
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.PredictProbaFrameRowsInto(fr, nil, dst)
		}
	})
	r := result{
		Benchmark: name,
		Rows:      fr.Rows(),
		NsOp:      br.NsPerOp(),
		NsRow:     float64(br.NsPerOp()) / float64(fr.Rows()),
		BytesOp:   br.AllocedBytesPerOp(),
		AllocsOp:  br.AllocsPerOp(),
		Note:      note,
	}
	fmt.Printf("%-28s %8.1f ns/row  %6d B/op  %3d allocs/op\n", name, r.NsRow, r.BytesOp, r.AllocsOp)
	return r
}

func run(out string, minSpeedup float64) error {
	// The committed benchmark workload: benchData(2000, 50) with seed 3.
	r := rand.New(rand.NewSource(3))
	x := make([][]float64, benchRows)
	y := make([]int, benchRows)
	for i := range x {
		row := make([]float64, benchCols)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		if row[0]+0.3*row[1] > 0.2 {
			y[i] = 1
		}
	}

	exact := forest.New(forest.Config{NumTrees: benchTrees, MinSamplesLeaf: 10, Seed: 1})
	if err := exact.Fit(x, y); err != nil {
		return fmt.Errorf("exact fit: %w", err)
	}
	hist := forest.New(forest.Config{NumTrees: benchTrees, MinSamplesLeaf: 10, Splitter: tree.Hist, Seed: 1})
	if err := hist.Fit(x, y); err != nil {
		return fmt.Errorf("hist fit: %w", err)
	}
	if hist.Quant() == nil || !hist.Quant().FullyQuantized() {
		return fmt.Errorf("hist fit did not compile a fully-quantized predictor")
	}

	dense := ml.FrameOf(x)
	chunked, err := frame.Rechunk(dense, 512, "")
	if err != nil {
		return fmt.Errorf("rechunk: %w", err)
	}
	defer chunked.Close()
	shard := ml.FrameOf(x[:shardRows])

	var rep report
	rep.Machine.Goos = runtime.GOOS
	rep.Machine.Goarch = runtime.GOARCH
	rep.Machine.CPU = cpuModel()
	rep.Machine.CoresVisible = runtime.NumCPU()
	rep.Workload = fmt.Sprintf("%d rows × %d continuous features, %d trees, MinSamplesLeaf 10, seed 1 (the committed ml/forest benchmark workload)", benchRows, benchCols, benchTrees)

	rep.Results = append(rep.Results,
		benchRow("PredictBatchDenseExact", exact, dense,
			"exact-splitter forest, float SoA walk: the pre-change committed baseline benchmark (BenchmarkForestPredictBatch)"))

	hist.SetQuantPredict(false)
	floatRow := benchRow("PredictBatchDenseFloatHist", hist, dense,
		"the same hist-trained trees through the float walk: the before side of the quantized comparison")
	rep.Results = append(rep.Results, floatRow)

	hist.SetQuantPredict(true)
	quantRow := benchRow("PredictBatchDenseQuant", hist, dense,
		"compiled uint8-code path: 256-row blocks quantized once via per-column grids, packed branchless 4-row-interleaved walk")
	rep.Results = append(rep.Results, quantRow)

	hist.Quant().SetParallelism(1)
	rep.Results = append(rep.Results, benchRow("PredictBatchQuantSerial", hist, dense,
		"quantized path pinned to one worker: the zero-closure inline block loop"))
	hist.Quant().SetParallelism(0)

	rep.Results = append(rep.Results, benchRow("PredictBatchQuantChunked", hist, chunked,
		"chunk-backed frame (512-row chunks): per-chunk block tiling, no densify"))

	rep.Results = append(rep.Results, benchRow("PredictShardQuant", hist, shard,
		fmt.Sprintf("one %d-row serving-shard batch: single-block inline regime, pooled scratch, zero allocations", shardRows)))

	rep.SpeedupQuantVsFloat = floatRow.NsRow / quantRow.NsRow
	rep.Description = fmt.Sprintf(
		"Forest batch-predict before/after the compiled quantized path, one process run. Headline: the uint8-code walk scores the dense %d-row frame at %.0f ns/row vs %.0f ns/row for the float walk over the identical hist-trained trees — %.2fx — and stays bit-identical (TestQuantBitIdentityDense, TestTable2QuantBitIdentity at workers 1/4/8). The exact-splitter float baseline (the old BenchmarkForestPredictBatch) measures %.0f ns/row in the same run.",
		benchRows, quantRow.NsRow, floatRow.NsRow, rep.SpeedupQuantVsFloat, rep.Results[0].NsRow)

	fmt.Printf("quant vs float on identical trees: %.2fx\n", rep.SpeedupQuantVsFloat)
	if minSpeedup > 0 && rep.SpeedupQuantVsFloat < minSpeedup {
		return fmt.Errorf("quantized path is only %.2fx faster than the float walk (gate: %.2fx)", rep.SpeedupQuantVsFloat, minSpeedup)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}

// cpuModel reads the CPU model name from /proc/cpuinfo (best effort —
// empty off Linux).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range splitLines(string(data)) {
		if name, ok := cutPrefixTrim(line, "model name"); ok {
			return name
		}
	}
	return ""
}

func splitLines(s string) []string {
	var lines []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		lines = append(lines, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return lines
}

// cutPrefixTrim matches "key<ws>:<ws>value" cpuinfo lines.
func cutPrefixTrim(line, key string) (string, bool) {
	if len(line) < len(key) || line[:len(key)] != key {
		return "", false
	}
	rest := line[len(key):]
	i := 0
	for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t') {
		i++
	}
	if i >= len(rest) || rest[i] != ':' {
		return "", false
	}
	i++
	for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t') {
		i++
	}
	return rest[i:], true
}
