// Command smoke is the verify.sh HTTP serving lane: it trains a compact
// model, builds and launches the real cmd/serve binary on a loopback
// port, streams observations through the HTTP API, asserts predictions
// and non-zero /metrics counters, then SIGTERMs the server and requires
// a clean drain. It exercises the full train → bundle → serve → predict
// path with real processes, not httptest.
//
// Usage: go run ./scripts/smoke
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
	"monitorless/internal/pcp"
	"monitorless/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("smoke: HTTP serving lane green")
}

func run() error {
	tmp, err := os.MkdirTemp("", "monitorless-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// 1. Train a compact bundle (same Table 1 subset the unit tests use).
	bundle := filepath.Join(tmp, "model.gob")
	if err := trainBundle(bundle); err != nil {
		return fmt.Errorf("train: %w", err)
	}

	// 2. Build and launch the real serve binary on a free port.
	bin := filepath.Join(tmp, "serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/serve").CombinedOutput(); err != nil {
		return fmt.Errorf("build cmd/serve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-model", bundle, "-addr", "127.0.0.1:0", "-drain", "5s")
	// An explicit pipe instead of StdoutPipe: Wait() closes the latter and
	// can drop the final drain lines before the scanner sees them.
	pr, pw, err := os.Pipe()
	if err != nil {
		return err
	}
	cmd.Stdout = pw
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	pw.Close()
	defer cmd.Process.Kill()
	// One Wait, shared by warm-up and shutdown: a serve binary that dies
	// before printing its banner must fail the lane immediately with its
	// exit status and output, not after the 30s listen timeout.
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()

	base, lines, err := awaitListen(pr, exit)
	if err != nil {
		return err
	}

	// 3. Stream 20 ticks of two instances and check the predictions.
	client := serving.NewClient(base)
	schema, err := client.Schema()
	if err != nil {
		return fmt.Errorf("GET /schema: %w", err)
	}
	width := len(schema.Metrics)
	if width == 0 {
		return fmt.Errorf("schema advertises no metrics")
	}
	const ticks, instances = 20, 2
	for t := 0; t < ticks; t++ {
		obs := pcp.Observation{T: t, Vectors: map[string][]float64{}}
		for i := 0; i < instances; i++ {
			vec := make([]float64, width)
			for j := range vec {
				vec[j] = float64((i+1)*(j%11)) * 0.09
			}
			obs.Vectors[fmt.Sprintf("tea/auth/%d", i)] = vec
		}
		resp, err := client.Ingest(obs)
		if err != nil {
			return fmt.Errorf("POST /ingest tick %d: %w", t, err)
		}
		if len(resp.Predictions) != instances {
			return fmt.Errorf("tick %d: %d predictions, want %d", t, len(resp.Predictions), instances)
		}
		for id, p := range resp.Predictions {
			if p.Samples != t+1 || p.Prob < 0 || p.Prob > 1 {
				return fmt.Errorf("tick %d: bad prediction for %s: %+v", t, id, p)
			}
		}
		if _, ok := resp.Apps["tea"]; !ok {
			return fmt.Errorf("tick %d: app aggregation missing", t)
		}
	}

	// 4. /metrics must report the ingested work.
	metrics, err := client.Metrics()
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	for _, want := range []string{
		fmt.Sprintf("monitorless_ingest_samples_total %d", ticks*instances),
		fmt.Sprintf("monitorless_ingest_observations_total %d", ticks),
		fmt.Sprintf("monitorless_predict_seconds_count %d", ticks*instances),
		`monitorless_http_requests_total{code="200",path="/ingest"}`,
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}

	// 5. Scale-in drops state.
	client.Forget("tea/auth/1")
	stats, err := client.Healthz()
	if err != nil {
		return fmt.Errorf("GET /healthz: %w", err)
	}
	if stats.Instances != instances-1 {
		return fmt.Errorf("healthz instances = %d after forget, want %d", stats.Instances, instances-1)
	}

	// 6. SIGTERM must drain cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exit:
		if err != nil {
			return fmt.Errorf("serve exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(10 * time.Second):
		return fmt.Errorf("serve did not exit within 10s of SIGTERM")
	}
	rest := <-lines
	if !strings.Contains(rest, "drained cleanly") {
		return fmt.Errorf("no clean-drain confirmation in output:\n%s", rest)
	}
	return nil
}

// trainBundle fits a small model and writes a versioned bundle.
func trainBundle(path string) error {
	all := dataset.Table1()
	var cfgs []dataset.RunConfig
	for _, c := range all {
		switch c.ID {
		case 1, 6, 8, 10, 22, 23:
			cfgs = append(cfgs, c)
		}
	}
	rep, err := dataset.Generate(cfgs, dataset.GenOptions{Duration: 350, RampSeconds: 250, Seed: 3})
	if err != nil {
		return err
	}
	m, err := core.Train(rep.Dataset, core.TrainConfig{
		Pipeline: features.Config{
			Normalize:    true,
			Reduce1:      features.ReduceFilter,
			TimeFeatures: true,
			Products:     true,
			Reduce2:      features.ReduceFilter,
			FilterTopK:   30,
			FilterTrees:  20,
			Seed:         7,
		},
		Forest: forest.Config{
			NumTrees:       20,
			MinSamplesLeaf: 10,
			Criterion:      tree.Entropy,
			Seed:           7,
		},
		Threshold: 0.4,
	})
	if err != nil {
		return err
	}
	return core.SaveBundleFile(path, m, 3)
}

// awaitListen scans serve's stdout for the listen banner and returns the
// base URL plus a channel that later yields the remaining output. A
// process-exit arriving first (via exit) fails immediately with the exit
// status and whatever the server printed, instead of idling out the
// 30-second deadline on a binary that is already dead.
func awaitListen(stdout interface{ Read([]byte) (int, error) }, exit <-chan error) (string, chan string, error) {
	scanner := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	rest := make(chan string, 1)
	go func() {
		var tail strings.Builder
		for scanner.Scan() {
			line := scanner.Text()
			if i := strings.Index(line, "serving on http://"); i >= 0 {
				addr := line[i+len("serving on "):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case found <- addr:
				default:
				}
				continue
			}
			tail.WriteString(line)
			tail.WriteString("\n")
		}
		rest <- tail.String()
	}()
	select {
	case addr := <-found:
		return addr, rest, nil
	case err := <-exit:
		// Scanner sees EOF once the child is gone; collect its output.
		var tail string
		select {
		case tail = <-rest:
		case <-time.After(2 * time.Second):
		}
		return "", nil, fmt.Errorf("serve exited during warm-up (%v) before listening; output:\n%s", err, tail)
	case <-deadline:
		return "", nil, fmt.Errorf("serve did not print its listen address within 30s")
	}
}
