// Command ingestbench measures the serving ingest plane's feature and
// prediction stages and writes BENCH_ingest.json: the pre-change
// per-sample feature stepping (StepInto + scratch-frame SetRow, exactly
// what the serving shard loop did before the columnar rewrite) versus the
// columnar batch step over the SoA state slab, the float scratch-frame
// predict route versus the fused feature→bin-code emission, an
// end-to-end in-process quiet-ingest figure, and per-instance state
// memory before (per-instance heap StreamState objects) and after (flat
// slab rings). All numbers come from one process run so every comparison
// shares the same machine state, and the serial/batch ratio is the gate
// scripts/verify.sh holds the plane to (the two paths are proven
// bit-identical by TestStepBatchMatchesSerialBitIdentical and
// FuzzStepBatchVsSerial, so the ratio is pure speedup, not drift).
//
// Usage:
//
//	go run ./scripts/ingestbench                         # BENCH_ingest.json
//	go run ./scripts/ingestbench -out /tmp/ingest.json -min-speedup 1.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/frame"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
	"monitorless/internal/pcp"
	"monitorless/internal/serving"
)

const (
	// batchK is one shard batch: the number of instances advanced per
	// benchmark op (a fleet tick routed across 8 shards lands batches of
	// this order on each).
	batchK = 512
	// memK sizes the per-instance memory measurement.
	memK = 4096
)

type result struct {
	Benchmark string  `json:"benchmark"`
	Rows      int     `json:"rows"`
	NsOp      int64   `json:"ns_op"`
	NsRow     float64 `json:"ns_row"`
	BytesOp   int64   `json:"bytes_op"`
	AllocsOp  int64   `json:"allocs_op"`
	Note      string  `json:"note,omitempty"`
}

type report struct {
	Description string `json:"description"`
	Machine     struct {
		Goos         string `json:"goos"`
		Goarch       string `json:"goarch"`
		CPU          string `json:"cpu"`
		CoresVisible int    `json:"cores_visible"`
	} `json:"machine"`
	Workload             string   `json:"workload"`
	SpeedupBatchVsSerial float64  `json:"speedup_batch_vs_serial"`
	SpeedupFusedVsFloat  float64  `json:"speedup_fused_vs_float"`
	IngestSamplesPerSec  float64  `json:"ingest_samples_per_sec"`
	BytesPerInstanceOld  float64  `json:"bytes_per_instance_old"`
	BytesPerInstanceNew  float64  `json:"bytes_per_instance_new"`
	Results              []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ingestbench: ")
	var (
		out        = flag.String("out", "BENCH_ingest.json", "JSON report path")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless the columnar batch feature step is at least this many times faster per sample than per-sample StepInto+SetRow (0 = no gate)")
	)
	flag.Parse()
	if err := run(*out, *minSpeedup); err != nil {
		log.Fatal(err)
	}
}

func record(name string, rows int, note string, fn func(b *testing.B)) result {
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	r := result{
		Benchmark: name,
		Rows:      rows,
		NsOp:      br.NsPerOp(),
		NsRow:     float64(br.NsPerOp()) / float64(rows),
		BytesOp:   br.AllocedBytesPerOp(),
		AllocsOp:  br.AllocsPerOp(),
		Note:      note,
	}
	fmt.Printf("%-26s %8.1f ns/row  %7d B/op  %4d allocs/op\n", name, r.NsRow, r.BytesOp, r.AllocsOp)
	return r
}

func run(out string, minSpeedup float64) error {
	// The serving test workload: a few Table 1 runs, the full paper
	// pipeline (normalize, importance filter, time windows, products,
	// second filter) and a hist-trained — therefore fully quantized —
	// forest, so the fused emission path is eligible.
	var cfgs []dataset.RunConfig
	for _, c := range dataset.Table1() {
		switch c.ID {
		case 1, 8, 22:
			cfgs = append(cfgs, c)
		}
	}
	rep0, err := dataset.Generate(cfgs, dataset.GenOptions{Duration: 300, RampSeconds: 200, Seed: 3})
	if err != nil {
		return err
	}
	m, err := core.Train(rep0.Dataset, core.TrainConfig{
		Pipeline: features.Config{
			Normalize:    true,
			Reduce1:      features.ReduceFilter,
			TimeFeatures: true,
			Products:     true,
			Reduce2:      features.ReduceFilter,
			FilterTopK:   30,
			FilterTrees:  20,
			Seed:         7,
		},
		Forest: forest.Config{
			NumTrees:       30,
			MinSamplesLeaf: 10,
			Criterion:      tree.Entropy,
			Splitter:       tree.Hist,
			Bins:           128,
			Seed:           7,
		},
		Threshold: 0.4,
	})
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	str, err := m.Streamer()
	if err != nil {
		return err
	}
	if len(str.FallbackSteps()) > 0 {
		return fmt.Errorf("pipeline has fallback steps %v; the benchmark wants the kernelized plane", str.FallbackSteps())
	}
	q := m.Forest.Quant()
	if q == nil || !q.FullyQuantized() {
		return fmt.Errorf("hist training did not produce a fully-quantized forest")
	}

	// Raw vectors: real catalog-width rows, tiled across the batch.
	tab := features.FromDataset(rep0.Dataset)
	var rows [][]float64
	for _, run := range tab.Runs {
		rows = append(rows, run.Rows...)
	}
	raws := make([][]float64, batchK)
	for k := range raws {
		raws[k] = rows[k%len(rows)]
	}

	var rep report
	rep.Machine.Goos = runtime.GOOS
	rep.Machine.Goarch = runtime.GOARCH
	rep.Machine.CPU = cpuModel()
	rep.Machine.CoresVisible = runtime.NumCPU()
	rep.Workload = fmt.Sprintf(
		"%d-instance shard batch, %d raw metrics → %d engineered features (full paper pipeline: normalize, filter, time windows, products, filter), %d-tree hist forest",
		batchK, str.NumInputs(), str.NumOutputs(), m.Forest.NumTrees())

	// Feature stage, before: per-sample StepInto + column-major SetRow
	// scatter — verbatim the pre-rewrite serving shard loop.
	engineered := m.EngineeredSchema()
	serialStates := make([]*features.StreamState, batchK)
	for k := range serialStates {
		serialStates[k] = str.NewState()
	}
	scr := frame.NewScratch(engineered, 0)
	var sc features.StepScratch
	serialRow := record("IngestFeatureSerial", batchK,
		"per-sample StepInto + scratch-frame SetRow: the pre-change serving ingest feature stage", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fr := scr.Frame(batchK)
				for k := 0; k < batchK; k++ {
					vec, err := str.StepInto(serialStates[k], raws[k], &sc)
					if err != nil {
						b.Fatal(err)
					}
					_ = fr
					scr.SetRow(k, vec)
				}
			}
		})
	rep.Results = append(rep.Results, serialRow)

	// Feature stage, after: one columnar batch step over the SoA slab.
	sl := features.NewStateSlab(str)
	sl.EnsureSlots(batchK)
	slots := make([]int32, batchK)
	for k := range slots {
		slots[k] = int32(k)
	}
	var bs features.BatchScratch
	batchRow := record("IngestFeatureBatch", batchK,
		"StepBatchInto over the per-shard StateSlab: transpose once, one kernel dispatch per pipeline step per batch, bit-identical to the serial path", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := str.StepBatchInto(sl, slots, raws, &bs); err != nil {
					b.Fatal(err)
				}
			}
		})
	rep.Results = append(rep.Results, batchRow)
	rep.SpeedupBatchVsSerial = serialRow.NsRow / batchRow.NsRow

	// Predict stage, float route: engineered columns copied into the
	// scratch frame, regular batch forest walk (quantizes internally).
	probs := make([]float64, batchK)
	floatRow := record("IngestPredictFloat", batchK,
		"engineered columns copied into the float scratch frame + batch forest walk: the unfused predict route", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fr := scr.Frame(batchK)
				for j, col := range bs.Cols() {
					copy(fr.Col(j), col[:batchK])
				}
				probs = m.PredictProbaRowsInto(fr, probs)
			}
		})
	rep.Results = append(rep.Results, floatRow)

	// Predict stage, fused: engineered columns quantize straight into the
	// forest's uint8 code slab, walk reads codes — no float frame.
	q.SetParallelism(1)
	var codes []uint8
	fusedRow := record("IngestPredictFused", batchK,
		"QuantizeBatch straight from the batch columns into the code slab + PredictProbaCodes: the fused feature→bin-code emission, one worker", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if codes, err = q.QuantizeBatch(bs.Cols(), batchK, codes); err != nil {
					b.Fatal(err)
				}
				if err := q.PredictProbaCodes(codes, probs[:batchK]); err != nil {
					b.Fatal(err)
				}
			}
		})
	rep.Results = append(rep.Results, fusedRow)
	rep.SpeedupFusedVsFloat = floatRow.NsRow / fusedRow.NsRow
	q.SetParallelism(0)

	// End to end: one in-process quiet ingest per op — routing, slot
	// registry, batch feature step, fused predict, aggregates, metrics.
	svc, err := serving.New(serving.Config{Model: m, Shards: 8})
	if err != nil {
		return err
	}
	obs := pcp.WireObservation{T: 0}
	for k := 0; k < batchK; k++ {
		obs.Samples = append(obs.Samples, pcp.WireSample{
			Instance: fmt.Sprintf("bench/app%02d/%d", k%16, k),
			Values:   raws[k],
		})
	}
	for w := 0; w < 3; w++ {
		resp, err := svc.IngestQuiet(obs)
		if err != nil {
			return err
		}
		svc.PutResponse(resp)
	}
	e2eRow := record("IngestQuietEndToEnd", batchK,
		"whole quiet in-process ingest: route, registry, columnar feature step, fused predict, per-app aggregation, metrics", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resp, err := svc.IngestQuiet(obs)
				if err != nil {
					b.Fatal(err)
				}
				svc.PutResponse(resp)
			}
		})
	rep.Results = append(rep.Results, e2eRow)
	rep.IngestSamplesPerSec = 1e9 / e2eRow.NsRow

	// Per-instance state memory, before: one heap StreamState per
	// instance (two ring slices each), measured as live-heap growth.
	rep.BytesPerInstanceOld = measureOldStateBytes(str)
	// After: the flat slab's own accounting over the same population.
	slM := features.NewStateSlab(str)
	slM.EnsureSlots(memK)
	rep.BytesPerInstanceNew = float64(slM.Bytes()) / memK

	rep.Description = fmt.Sprintf(
		"Serving ingest plane before/after the columnar rewrite, one process run. Headline: the batch feature step engineers a %d-sample shard batch at %.0f ns/sample vs %.0f ns/sample for the pre-change per-sample StepInto+SetRow loop — %.2fx — bit-identical by construction (equivalence, fuzz and shard/worker-invariance tests). The fused feature→bin-code emission scores the same batch at %.0f ns/sample vs %.0f ns/sample through the float scratch frame (%.2fx), and per-instance ring state costs %.0f B in the SoA slab vs %.0f B as per-instance heap objects.",
		batchK, batchRow.NsRow, serialRow.NsRow, rep.SpeedupBatchVsSerial,
		fusedRow.NsRow, floatRow.NsRow, rep.SpeedupFusedVsFloat,
		rep.BytesPerInstanceNew, rep.BytesPerInstanceOld)

	fmt.Printf("batch vs serial feature step: %.2fx; fused vs float predict: %.2fx\n",
		rep.SpeedupBatchVsSerial, rep.SpeedupFusedVsFloat)
	fmt.Printf("instance state: %.0f B/instance slab vs %.0f B/instance heap objects; end-to-end %.0f samples/s/core\n",
		rep.BytesPerInstanceNew, rep.BytesPerInstanceOld, rep.IngestSamplesPerSec)
	if minSpeedup > 0 && rep.SpeedupBatchVsSerial < minSpeedup {
		return fmt.Errorf("columnar batch step is only %.2fx faster than per-sample stepping (gate: %.2fx)", rep.SpeedupBatchVsSerial, minSpeedup)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}

// measureOldStateBytes reports the heap cost of one pre-change
// per-instance StreamState (flat rings, but individually heap-allocated
// per instance), averaged over memK instances. TotalAlloc counts what
// the allocator actually hands out — per-object size-class rounding
// included, which is exactly the overhead the shared slab avoids — and,
// unlike a HeapAlloc delta, is monotonic and immune to concurrent GC.
func measureOldStateBytes(str *features.Streamer) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	states := make([]*features.StreamState, memK)
	for i := range states {
		states[i] = str.NewState()
	}
	runtime.ReadMemStats(&after)
	per := float64(after.TotalAlloc-before.TotalAlloc-uint64(memK*8)) / memK
	runtime.KeepAlive(states)
	return per
}

// cpuModel reads the CPU model name from /proc/cpuinfo (best effort —
// empty off Linux).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	line := ""
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			if name, ok := cutPrefixTrim(line, "model name"); ok {
				return name
			}
			line = ""
			continue
		}
		line += string(data[i])
	}
	return ""
}

// cutPrefixTrim matches "key<ws>:<ws>value" cpuinfo lines.
func cutPrefixTrim(line, key string) (string, bool) {
	if len(line) < len(key) || line[:len(key)] != key {
		return "", false
	}
	rest := line[len(key):]
	i := 0
	for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t') {
		i++
	}
	if i >= len(rest) || rest[i] != ':' {
		return "", false
	}
	i++
	for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t') {
		i++
	}
	return rest[i:], true
}
