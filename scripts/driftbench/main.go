// Command driftbench measures the model lifecycle plane and writes
// BENCH_drift.json: shadow-retrain round latency (reservoir snapshot +
// challenger fit + champion/challenger holdout comparison) and the cost
// a hot swap imposes on the serving path — both the swap call itself and
// the p99 of ingest batch latency while warm swaps land continuously,
// compared against a quiet baseline. The numbers back the DESIGN §5i
// claim that promotion is pause-free: a swap is one atomic pointer store,
// so ingest latency under swap churn should be indistinguishable from
// the quiet run.
//
// Usage: go run ./scripts/driftbench [-out BENCH_drift.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/lifecycle"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
	"monitorless/internal/pcp"
	"monitorless/internal/serving"
)

type report struct {
	RetrainRounds   int     `json:"retrain_rounds"`
	ReservoirRows   int     `json:"reservoir_rows"`
	TrainRows       int     `json:"train_rows"`
	HoldoutRows     int     `json:"holdout_rows"`
	RetrainP50Ms    float64 `json:"retrain_p50_ms"`
	RetrainP99Ms    float64 `json:"retrain_p99_ms"`
	ChallengerWins  int     `json:"challenger_wins"`
	ChallengerLoss  int     `json:"challenger_losses"`
	Swaps           int     `json:"swaps"`
	WarmSwapP50Us   float64 `json:"warm_swap_p50_us"`
	WarmSwapP99Us   float64 `json:"warm_swap_p99_us"`
	IngestBatch     int     `json:"ingest_batch"`
	QuietIngestP50U float64 `json:"ingest_quiet_p50_us"`
	QuietIngestP99U float64 `json:"ingest_quiet_p99_us"`
	ChurnIngestP50U float64 `json:"ingest_churn_p50_us"`
	ChurnIngestP99U float64 `json:"ingest_churn_p99_us"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("driftbench: ")
	out := flag.String("out", "BENCH_drift.json", "JSON report path")
	rounds := flag.Int("rounds", 10, "shadow retrain rounds to time")
	flag.Parse()
	if err := run(*out, *rounds); err != nil {
		log.Fatal(err)
	}
}

func run(out string, rounds int) error {
	m, ds, err := trainModel()
	if err != nil {
		return err
	}
	rep := report{RetrainRounds: rounds}

	// --- Retrain latency: fill the reservoir with the engineered training
	// rows and time full shadow rounds (snapshot + champion holdout F1 +
	// challenger fit + challenger holdout F1).
	mg, err := lifecycle.NewManager(lifecycle.Config{
		Champion: m,
		Policy:   lifecycle.PolicyShadow,
		Seed:     7,
	})
	if err != nil {
		return err
	}
	eng, err := m.Pipeline.TransformFrame(ds.Frame())
	if err != nil {
		return err
	}
	vec := make([]float64, eng.NumCols())
	for i, y := range eng.Labels() {
		mg.Reservoir.Add(eng.Row(i, vec), y)
	}
	rep.ReservoirRows = mg.Reservoir.Len()

	retrain := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		r := mg.RetrainOnce()
		retrain = append(retrain, time.Since(start))
		if r.Skipped != "" || r.Err != "" {
			return fmt.Errorf("retrain round %d did not complete: %+v", i, r)
		}
		rep.TrainRows, rep.HoldoutRows = r.TrainRows, r.HoldoutRows
		if r.Win {
			rep.ChallengerWins++
		} else {
			rep.ChallengerLoss++
		}
	}
	rep.RetrainP50Ms = percentile(retrain, 0.50).Seconds() * 1e3
	rep.RetrainP99Ms = percentile(retrain, 0.99).Seconds() * 1e3

	// --- Swap pause: per-batch ingest latency on a quiet service vs one
	// taking continuous warm swaps, plus the swap call latency itself.
	svc, err := serving.New(serving.Config{Model: m, Shards: 8, DriftWindow: 4096})
	if err != nil {
		return err
	}
	const batch = 256
	rep.IngestBatch = batch
	raw := ds.Frame()
	obs := pcp.WireObservation{}
	row := make([]float64, raw.NumCols())
	for i := 0; i < batch; i++ {
		obs.Samples = append(obs.Samples, pcp.WireSample{
			Instance: fmt.Sprintf("bench%d/s/%d", i%16, i),
			Values:   append([]float64(nil), raw.Row(i%raw.Rows(), row)...),
		})
	}
	ingestOnce := func(t int) (time.Duration, error) {
		obs.T = t
		start := time.Now()
		resp, err := svc.IngestQuiet(obs)
		if err != nil {
			return 0, err
		}
		el := time.Since(start)
		svc.PutResponse(resp)
		return el, nil
	}
	const ticks = 300
	for t := 0; t < 20; t++ { // warm up instance state
		if _, err := ingestOnce(t); err != nil {
			return err
		}
	}
	quiet := make([]time.Duration, 0, ticks)
	for t := 0; t < ticks; t++ {
		el, err := ingestOnce(100 + t)
		if err != nil {
			return err
		}
		quiet = append(quiet, el)
	}

	challenger := *m
	swapDone := make(chan []time.Duration)
	stop := make(chan struct{})
	go func() {
		var swaps []time.Duration
		for i := 0; ; i++ {
			select {
			case <-stop:
				swapDone <- swaps
				return
			default:
			}
			mm := m
			if i%2 == 0 {
				mm = &challenger
			}
			start := time.Now()
			if _, err := svc.Swap(mm, 0, "bench churn"); err != nil {
				log.Fatalf("swap: %v", err)
			}
			swaps = append(swaps, time.Since(start))
			// Aggressive but bounded churn: a swap every ~1ms, about
			// 60k×/day more often than any real retrain policy, without
			// turning the benchmark into a CPU-starvation contest.
			time.Sleep(time.Millisecond)
		}
	}()
	churn := make([]time.Duration, 0, ticks)
	for t := 0; t < ticks; t++ {
		el, err := ingestOnce(1000 + t)
		if err != nil {
			return err
		}
		churn = append(churn, el)
	}
	close(stop)
	swaps := <-swapDone
	rep.Swaps = len(swaps)

	rep.QuietIngestP50U = percentile(quiet, 0.50).Seconds() * 1e6
	rep.QuietIngestP99U = percentile(quiet, 0.99).Seconds() * 1e6
	rep.ChurnIngestP50U = percentile(churn, 0.50).Seconds() * 1e6
	rep.ChurnIngestP99U = percentile(churn, 0.99).Seconds() * 1e6
	rep.WarmSwapP50Us = percentile(swaps, 0.50).Seconds() * 1e6
	rep.WarmSwapP99Us = percentile(swaps, 0.99).Seconds() * 1e6

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("retrain %d rounds on %d reservoir rows: p50 %.1fms p99 %.1fms (%d challenger wins)\n",
		rounds, rep.ReservoirRows, rep.RetrainP50Ms, rep.RetrainP99Ms, rep.ChallengerWins)
	fmt.Printf("%d warm swaps under load: swap p99 %.1fµs; ingest p99 quiet %.1fµs vs churn %.1fµs (batch %d)\n",
		rep.Swaps, rep.WarmSwapP99Us, rep.QuietIngestP99U, rep.ChurnIngestP99U, batch)
	fmt.Printf("wrote %s\n", out)
	return nil
}

func trainModel() (*core.Model, *dataset.Dataset, error) {
	all := dataset.Table1()
	var cfgs []dataset.RunConfig
	for _, c := range all {
		switch c.ID {
		case 1, 6, 8, 10, 22, 23:
			cfgs = append(cfgs, c)
		}
	}
	rep, err := dataset.Generate(cfgs, dataset.GenOptions{Duration: 350, RampSeconds: 250, Seed: 3})
	if err != nil {
		return nil, nil, err
	}
	m, err := core.Train(rep.Dataset, core.TrainConfig{
		Pipeline: features.Config{
			Normalize:    true,
			Reduce1:      features.ReduceFilter,
			TimeFeatures: true,
			Products:     true,
			Reduce2:      features.ReduceFilter,
			FilterTopK:   30,
			FilterTrees:  20,
			Seed:         7,
		},
		Forest: forest.Config{
			NumTrees:       20,
			MinSamplesLeaf: 10,
			Criterion:      tree.Entropy,
			Seed:           7,
		},
		Threshold: 0.4,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, rep.Dataset, nil
}

func percentile(xs []time.Duration, p float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
