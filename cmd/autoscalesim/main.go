// Command autoscalesim reproduces the paper's Table 7: the autoscaling
// comparison on the TeaStore deployment. Each policy (optimally tuned
// thresholds, monitorless, the RT-based oracle, no scaling) runs a fresh
// environment under the same workload; the command reports extra
// provisioning and SLO violations per policy.
//
// Usage:
//
//	autoscalesim [-model model.gob] [-scale small|full]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"monitorless/internal/core"
	"monitorless/internal/experiments"
	"monitorless/internal/pcp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autoscalesim: ")

	var (
		modelPath = flag.String("model", "", "trained model (default: train in-process)")
		scaleName = flag.String("scale", "small", "experiment scale: small or full")
	)
	flag.Parse()

	scale := experiments.Small()
	if *scaleName == "full" {
		scale = experiments.Full()
	}

	var ctx *experiments.Context
	if *modelPath != "" {
		b, err := core.LoadBundleFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.CheckSchema(pcp.DefaultCatalog().CombinedNames()); err != nil {
			log.Fatal(err)
		}
		ctx = &experiments.Context{Scale: scale, Model: b.Model}
	} else {
		var err error
		fmt.Fprintln(os.Stderr, "no -model given: generating training data and training in-process...")
		ctx, err = experiments.NewContext(scale)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Table 7 needs the a-posteriori thresholds from the Table 6 run.
	data, err := experiments.CollectTeaStore(ctx)
	if err != nil {
		log.Fatal(err)
	}
	table6, _, err := experiments.Table6(ctx, data)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintEvalTable(os.Stdout, table6)

	rows, err := experiments.Table7(ctx, table6)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintTable7(os.Stdout, rows)
}
