// Command loadgen benchmarks the serving plane at fleet scale: it trains
// a lean model bundle, builds and launches the real cmd/serve binary on a
// loopback port, then simulates N instances emitting one metric vector
// per second and ships them as binary batch frames (?quiet=1) over a few
// persistent connections. Base vectors come from the allocation-free
// workload simulator (a handful of Table 1 runs ticking live), tiled
// across the fleet so every sample is a realistic catalog-width vector
// without simulating 100k containers one by one.
//
// It records per-request ingest latency (p50/p99), per-tick wall time,
// and end-to-end samples/s into a JSON report, verifies the server
// tracked every instance and counted every sample, then SIGTERMs the
// server and requires a clean drain.
//
// Usage:
//
//	go run ./cmd/loadgen -instances 100000 -ticks 30 -out BENCH_serving_scale.json
//	go run ./cmd/loadgen -instances 1000 -ticks 10 -out /tmp/smoke.json   # CI smoke
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"monitorless/internal/apps"
	"monitorless/internal/cluster"
	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/features"
	"monitorless/internal/ml/forest"
	"monitorless/internal/ml/tree"
	"monitorless/internal/pcp"
	"monitorless/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	debug.SetGCPercent(300)

	var (
		instances = flag.Int("instances", 100000, "simulated instances")
		ticks     = flag.Int("ticks", 30, "measured observation ticks")
		warmup    = flag.Int("warmup", 3, "unmeasured warm-up ticks (fleet maps, pools, scratch all reach steady state)")
		hz        = flag.Float64("hz", 1, "target ticks per second")
		batch     = flag.Int("batch", 8192, "samples per binary frame")
		conns     = flag.Int("conns", 2, "concurrent ingest connections")
		shards    = flag.Int("shards", 0, "server shard count (0 = server default)")
		modelPath = flag.String("model", "", "existing lean bundle (default: train one)")
		out       = flag.String("out", "BENCH_serving_scale.json", "JSON report path")
	)
	flag.Parse()
	if err := run(*instances, *ticks, *warmup, *hz, *batch, *conns, *shards, *modelPath, *out); err != nil {
		log.Fatal(err)
	}
}

// report is the BENCH_serving_scale.json shape.
type report struct {
	Instances     int     `json:"instances"`
	Ticks         int     `json:"ticks"`
	WarmupTicks   int     `json:"warmup_ticks"`
	TargetHz      float64 `json:"target_hz"`
	Batch         int     `json:"batch"`
	Conns         int     `json:"conns"`
	Shards        int     `json:"shards"`
	Width         int     `json:"width"`
	FrameBytes    int     `json:"frame_bytes_per_batch"`
	TotalSamples  int     `json:"total_samples"`
	WallSeconds   float64 `json:"wall_seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	IngestP50Ms   float64 `json:"ingest_p50_ms"`
	IngestP99Ms   float64 `json:"ingest_p99_ms"`
	TickP50Ms     float64 `json:"tick_p50_ms"`
	TickMaxMs     float64 `json:"tick_max_ms"`
	OnTimeTicks   int     `json:"on_time_ticks"`
	// Predict-stage attribution, scraped from the server's /metrics
	// histograms at the end of the run: the forest's quantize+walk time
	// per sample versus the whole per-batch predict pipeline (feature
	// step + vote), so a batch-predict speedup is visible separately
	// from wire decode and ingest bookkeeping.
	QuantPredict       bool    `json:"quant_predict"`
	PredictStageUsPerS float64 `json:"predict_stage_us_per_sample"`
	PredictTotalUsPerS float64 `json:"predict_total_us_per_sample"`
	// Memory accounting: the server's own SoA instance-state slab gauge
	// divided by the tracked fleet, plus the server process's peak RSS
	// (VmHWM) read just before shutdown.
	InstanceStateBytes int64   `json:"instance_state_bytes"`
	BytesPerInstance   float64 `json:"bytes_per_instance"`
	PeakRSSMB          float64 `json:"peak_rss_mb"`
}

// scrapeGauge fetches /metrics and returns the named un-labeled series.
func scrapeGauge(base, name string) (float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseFloat(strings.TrimSpace(v), 64)
		}
	}
	return 0, fmt.Errorf("gauge %s not found on /metrics", name)
}

// peakRSSMB reads the process's high-water resident set (VmHWM) from
// /proc. Returns 0 on platforms without procfs.
func peakRSSMB(pid int) float64 {
	body, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(v)
			if len(fields) >= 1 {
				kb, err := strconv.ParseFloat(fields[0], 64)
				if err == nil {
					return kb / 1024
				}
			}
		}
	}
	return 0
}

// scrapeHistogramMean fetches /metrics and returns sum/count of the
// named histogram in microseconds per observation.
func scrapeHistogramMean(base, name string) (float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return 0, err
	}
	var sum, count float64
	var haveSum, haveCount bool
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, name+"_sum "); ok {
			if sum, err = strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				haveSum = true
			}
		} else if v, ok := strings.CutPrefix(line, name+"_count "); ok {
			if count, err = strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				haveCount = true
			}
		}
	}
	if !haveSum || !haveCount {
		return 0, fmt.Errorf("histogram %s not found on /metrics", name)
	}
	if count == 0 {
		return 0, fmt.Errorf("histogram %s has zero observations", name)
	}
	return sum / count * 1e6, nil
}

func run(instances, ticks, warmup int, hz float64, batch, conns, shards int, modelPath, out string) error {
	if instances < 1 || ticks < 1 || batch < 1 || conns < 1 || hz <= 0 {
		return fmt.Errorf("instances, ticks, batch, conns and hz must be positive")
	}
	if warmup < 0 {
		return fmt.Errorf("warmup must be non-negative")
	}
	tmp, err := os.MkdirTemp("", "monitorless-loadgen-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// 1. Model bundle: lean online config — normalize + importance filter,
	// no time windows — so per-sample serving cost is dominated by the
	// plane being measured, not feature math.
	if modelPath == "" {
		modelPath = filepath.Join(tmp, "model.gob")
		start := time.Now()
		if err := trainLeanBundle(modelPath); err != nil {
			return fmt.Errorf("train lean bundle: %w", err)
		}
		fmt.Printf("trained lean bundle in %s\n", time.Since(start).Round(time.Millisecond))
	}

	// 2. Launch the real serve binary.
	bin := filepath.Join(tmp, "serve")
	if outB, err := exec.Command("go", "build", "-o", bin, "./cmd/serve").CombinedOutput(); err != nil {
		return fmt.Errorf("build cmd/serve: %v\n%s", err, outB)
	}
	args := []string{"-model", modelPath, "-addr", "127.0.0.1:0", "-drain", "10s"}
	if shards > 0 {
		args = append(args, "-shards", fmt.Sprint(shards))
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "GOGC=300")
	pr, pw, err := os.Pipe()
	if err != nil {
		return err
	}
	cmd.Stdout = pw
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	pw.Close()
	defer cmd.Process.Kill()
	// One Wait, shared by warm-up and shutdown: a serve binary that dies
	// before printing its banner must fail the run immediately with its
	// exit status and output, not after the 60s listen timeout.
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	base, lines, err := awaitListen(pr, exited)
	if err != nil {
		return err
	}
	fmt.Printf("serve up at %s\n", base)

	client := serving.NewClient(base)
	schema, err := client.Schema()
	if err != nil {
		return fmt.Errorf("GET /schema: %w", err)
	}
	width := len(schema.Metrics)

	// 3. Traffic source: live simulator ticks provide the base vectors.
	src, err := newTrafficSource()
	if err != nil {
		return fmt.Errorf("traffic source: %w", err)
	}
	fmt.Printf("simulator provides %d base vectors of width %d, tiled to %d instances\n",
		len(src.vectors), width, instances)

	// Precomputed fleet: IDs and the base vector each instance emits. A
	// few dozen apps so per-app aggregation does real work.
	samples := make([]pcp.WireSample, instances)
	const numApps = 32
	for i := range samples {
		samples[i] = pcp.WireSample{
			Instance: fmt.Sprintf("app%02d/svc/%d", i%numApps, i),
			Values:   src.vectors[i%len(src.vectors)],
		}
	}

	// 4. Paced tick loop: each tick advances the simulator, refreshes the
	// base vectors in place (every tiled sample sees the new values), and
	// fans batches out over the worker connections as binary frames.
	numBatches := (instances + batch - 1) / batch
	type job struct {
		lo, hi, t int
		record    bool
		done      *sync.WaitGroup
	}
	jobs := make(chan job, numBatches)
	latencies := make([]time.Duration, 0, numBatches*ticks)
	var latMu sync.Mutex
	var workerErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hc := &http.Client{Timeout: 60 * time.Second}
			var buf []byte
			var local []time.Duration
			for j := range jobs {
				obs := pcp.WireObservation{T: j.t, SchemaHash: schema.SchemaHash, Samples: samples[j.lo:j.hi]}
				var err error
				start := time.Now()
				buf, err = serving.AppendWire(buf[:0], obs)
				if err == nil {
					err = postFrame(hc, base, buf)
				}
				if j.record {
					local = append(local, time.Since(start))
				}
				if err != nil {
					errOnce.Do(func() { workerErr = fmt.Errorf("batch [%d,%d) tick %d: %w", j.lo, j.hi, j.t, err) })
				}
				j.done.Done()
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}()
	}

	// Warm-up ticks run the identical paced loop but are excluded from the
	// measurement: the first ticks pay one-off costs (fleet-sized map
	// growth, pool and scratch warm-up) that a steady 1 Hz pipeline never
	// sees again.
	period := time.Duration(float64(time.Second) / hz)
	tickWall := make([]time.Duration, 0, ticks)
	onTime := 0
	var benchStart time.Time
	total := warmup + ticks
	for t := 0; t < total; t++ {
		measured := t >= warmup
		if t == warmup {
			benchStart = time.Now()
		}
		tickStart := time.Now()
		src.tick()
		var tickWG sync.WaitGroup
		for lo := 0; lo < instances; lo += batch {
			hi := min(lo+batch, instances)
			tickWG.Add(1)
			jobs <- job{lo: lo, hi: hi, t: t, record: measured, done: &tickWG}
		}
		// Drain this tick before mutating the base vectors for the next.
		tickWG.Wait()
		el := time.Since(tickStart)
		if workerErr != nil {
			close(jobs)
			wg.Wait()
			return workerErr
		}
		if measured {
			tickWall = append(tickWall, el)
			if el < period {
				onTime++
			}
		}
		if el < period && t < total-1 {
			time.Sleep(period - el)
		}
	}
	wall := time.Since(benchStart)
	close(jobs)
	wg.Wait()
	if workerErr != nil {
		return workerErr
	}

	// 5. The server must have tracked the whole fleet and every sample.
	stats, err := client.Healthz()
	if err != nil {
		return fmt.Errorf("GET /healthz: %w", err)
	}
	totalSamples := instances * ticks
	if stats.Instances != instances {
		return fmt.Errorf("server tracks %d instances, want %d", stats.Instances, instances)
	}
	if want := instances * (warmup + ticks); int(stats.SamplesTotal) != want {
		return fmt.Errorf("server counted %.0f samples, want %d", stats.SamplesTotal, want)
	}
	apps, err := client.Apps()
	if err != nil {
		return fmt.Errorf("GET /apps: %w", err)
	}
	if len(apps) != numApps {
		return fmt.Errorf("server aggregates %d apps, want %d", len(apps), numApps)
	}

	// Predict-stage attribution from the server's own histograms, while
	// the server is still up. Counts cover warm-up ticks too, which is
	// fine: these are steady-state per-sample means.
	stageUs, err := scrapeHistogramMean(base, "monitorless_predict_stage_seconds")
	if err != nil {
		return fmt.Errorf("scrape predict stage: %w", err)
	}
	totalUs, err := scrapeHistogramMean(base, "monitorless_predict_seconds")
	if err != nil {
		return fmt.Errorf("scrape predict total: %w", err)
	}
	stateBytes, err := scrapeGauge(base, "monitorless_instance_state_bytes")
	if err != nil {
		return fmt.Errorf("scrape instance state bytes: %w", err)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sort.Slice(tickWall, func(i, j int) bool { return tickWall[i] < tickWall[j] })
	frameBytes := 0
	if probe, err := serving.EncodeWire(pcp.WireObservation{T: 0, SchemaHash: schema.SchemaHash,
		Samples: samples[:min(batch, instances)]}); err == nil {
		frameBytes = len(probe)
	}
	rep := report{
		Instances:     instances,
		Ticks:         ticks,
		WarmupTicks:   warmup,
		TargetHz:      hz,
		Batch:         batch,
		Conns:         conns,
		Shards:        stats.Shards,
		Width:         width,
		FrameBytes:    frameBytes,
		TotalSamples:  totalSamples,
		WallSeconds:   wall.Seconds(),
		SamplesPerSec: float64(totalSamples) / wall.Seconds(),
		IngestP50Ms:   ms(quantile(latencies, 0.50)),
		IngestP99Ms:   ms(quantile(latencies, 0.99)),
		TickP50Ms:     ms(quantile(tickWall, 0.50)),
		TickMaxMs:     ms(tickWall[len(tickWall)-1]),
		OnTimeTicks:   onTime,

		QuantPredict:       stats.QuantPredict,
		PredictStageUsPerS: stageUs,
		PredictTotalUsPerS: totalUs,
		InstanceStateBytes: int64(stateBytes),
		BytesPerInstance:   stateBytes / float64(instances),
		PeakRSSMB:          peakRSSMB(cmd.Process.Pid),
	}
	if rep.SamplesPerSec <= 0 {
		return fmt.Errorf("measured zero throughput")
	}
	blob, _ := json.MarshalIndent(rep, "", "  ")
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("%d instances × %d ticks: %.0f samples/s, ingest p50 %.1fms p99 %.1fms, tick p50 %.0fms max %.0fms, %d/%d ticks on time\n",
		instances, ticks, rep.SamplesPerSec, rep.IngestP50Ms, rep.IngestP99Ms, rep.TickP50Ms, rep.TickMaxMs, onTime, ticks)
	fmt.Printf("predict stage %.2fµs/sample of %.2fµs/sample total (quant_predict=%v)\n",
		stageUs, totalUs, stats.QuantPredict)
	fmt.Printf("instance state %.0f B/instance (%.1f MB slab, server peak RSS %.0f MB)\n",
		rep.BytesPerInstance, stateBytes/(1<<20), rep.PeakRSSMB)
	fmt.Printf("report written to %s\n", out)

	// 6. Clean SIGTERM drain.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("serve exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("serve did not exit within 20s of SIGTERM")
	}
	if rest := <-lines; !strings.Contains(rest, "drained cleanly") {
		return fmt.Errorf("no clean-drain confirmation in output:\n%s", rest)
	}
	fmt.Println("serve drained cleanly")
	return nil
}

func postFrame(hc *http.Client, base string, frame []byte) error {
	resp, err := hc.Post(base+"/ingest?quiet=1", serving.WireContentType, bytes.NewReader(frame))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("ingest status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// trafficSource wraps a live simulator: a few Table 1 runs ticking on one
// training host, their per-instance vectors copied out each tick into
// stable slices the tiled fleet references.
type trafficSource struct {
	eng     *apps.Engine
	agent   *pcp.Agent
	ctrs    []*cluster.Container
	vectors [][]float64
}

func newTrafficSource() (*trafficSource, error) {
	var cfgs []dataset.RunConfig
	for _, c := range dataset.Table1() {
		switch c.ID {
		case 1, 7, 8, 9, 22, 23:
			cfgs = append(cfgs, c)
		}
	}
	c, err := cluster.New(apps.TrainingNode("load"))
	if err != nil {
		return nil, err
	}
	var appList []*apps.App
	for _, cfg := range cfgs {
		app, err := apps.Build(c, fmt.Sprintf("run%d", cfg.ID), cfg.Traffic(11), []apps.ServiceSpec{{
			Name:       cfg.Service,
			Node:       "load",
			Profile:    cfg.Profile(),
			Visit:      1,
			CPULimit:   cfg.CPULimit,
			MemLimitGB: cfg.MemLimitGB,
		}})
		if err != nil {
			return nil, err
		}
		appList = append(appList, app)
	}
	eng, err := apps.NewEngine(c, appList...)
	if err != nil {
		return nil, err
	}
	src := &trafficSource{eng: eng, agent: pcp.NewAgent(pcp.NewCollector(pcp.DefaultCatalog(), 11))}
	for _, app := range appList {
		for _, s := range app.Services() {
			for _, inst := range s.Instances() {
				src.ctrs = append(src.ctrs, inst.Ctr)
			}
		}
	}
	width := len(src.agent.Catalog().CombinedDefs())
	src.vectors = make([][]float64, len(src.ctrs))
	for i := range src.vectors {
		src.vectors[i] = make([]float64, width)
	}
	// Two warm ticks: the first agent observation only primes counters.
	src.tick()
	src.tick()
	return src, nil
}

// tick advances the simulation one second and refreshes the base vectors
// in place (the fleet's samples alias them, so every tiled instance sees
// the new values without any per-tick reassignment).
func (s *trafficSource) tick() {
	s.eng.Tick()
	ts, ok := s.agent.ObserveTick(s.eng)
	if !ok {
		return
	}
	for i, ctr := range s.ctrs {
		if ri := ts.Index(ctr); ri >= 0 {
			copy(s.vectors[i], ts.Vector(ri))
		}
	}
}

// trainLeanBundle fits the load-test model: normalize + importance filter
// (no time windows), a small histogram-trained forest — the cheapest
// per-sample online path that still runs the full pipeline and forest.
func trainLeanBundle(path string) error {
	var cfgs []dataset.RunConfig
	for _, c := range dataset.Table1() {
		switch c.ID {
		case 1, 8, 22:
			cfgs = append(cfgs, c)
		}
	}
	rep, err := dataset.Generate(cfgs, dataset.GenOptions{Duration: 300, RampSeconds: 200, Seed: 3})
	if err != nil {
		return err
	}
	m, err := core.Train(rep.Dataset, core.TrainConfig{
		Pipeline: features.Config{
			Normalize:   true,
			Reduce1:     features.ReduceFilter,
			FilterTopK:  16,
			FilterTrees: 10,
			Seed:        7,
		},
		Forest: forest.Config{
			NumTrees:       12,
			MinSamplesLeaf: 20,
			Criterion:      tree.Entropy,
			Splitter:       tree.Hist,
			Seed:           7,
		},
		Threshold: 0.4,
	})
	if err != nil {
		return err
	}
	return core.SaveBundleFile(path, m, 3)
}

// awaitListen scans serve's stdout for the listen banner and returns the
// base URL plus a channel that later yields the remaining output. A
// process-exit arriving first (via exit) fails immediately with the exit
// status and whatever the server printed, instead of idling out the
// 60-second deadline on a binary that is already dead.
func awaitListen(stdout io.Reader, exit <-chan error) (string, chan string, error) {
	scanner := bufio.NewScanner(stdout)
	found := make(chan string, 1)
	rest := make(chan string, 1)
	go func() {
		var tail strings.Builder
		for scanner.Scan() {
			line := scanner.Text()
			if i := strings.Index(line, "serving on http://"); i >= 0 {
				addr := line[i+len("serving on "):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case found <- addr:
				default:
				}
				continue
			}
			tail.WriteString(line)
			tail.WriteString("\n")
		}
		rest <- tail.String()
	}()
	select {
	case addr := <-found:
		return addr, rest, nil
	case err := <-exit:
		// Scanner sees EOF once the child is gone; collect its output.
		var tail string
		select {
		case tail = <-rest:
		case <-time.After(2 * time.Second):
		}
		return "", nil, fmt.Errorf("serve exited during warm-up (%v) before listening; output:\n%s", err, tail)
	case <-time.After(60 * time.Second):
		return "", nil, fmt.Errorf("serve did not print its listen address within 60s")
	}
}
