// Command train fits the monitorless model on a training corpus (either a
// datagen CSV or a freshly generated Table 1 corpus) and persists it.
// With -table3 it also reproduces the paper's algorithm comparison.
//
// Usage:
//
//	train -out model.gob [-data training.csv] [-scale small|full] [-table3] [-rules] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"monitorless/internal/core"
	"monitorless/internal/dataset"
	"monitorless/internal/experiments"
	"monitorless/internal/features"
	"monitorless/internal/frame"
	"monitorless/internal/ml/tree"
	"monitorless/internal/parallel"
	"monitorless/internal/pcp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")

	var (
		data      = flag.String("data", "", "training CSV from datagen (default: generate in-process)")
		out       = flag.String("out", "model.gob", "model output path")
		scaleName = flag.String("scale", "small", "experiment scale: small or full")
		table3    = flag.Bool("table3", false, "also run the Table 3 algorithm comparison")
		table4    = flag.Bool("table4", true, "print the Table 4 feature importances")
		rules     = flag.Bool("rules", false, "distill the model into operator-readable scaling rules (§5 interpretability)")
		workers   = flag.Int("parallel", 0, "worker pool size for generation and evaluation sweeps (0 = GOMAXPROCS)")
		splitter  = flag.String("splitter", "exact", "forest split search: exact (sorted scans, the parity reference) or hist (histogram-binned, fast retraining)")
		bins      = flag.Int("bins", 256, "max quantile bins per column for -splitter hist (2..256)")
		spillDir  = flag.String("spill-dir", "", "train out of core from a chunked corpus written by datagen -spill-dir (pairs best with -splitter hist)")
		quantPred = flag.Bool("quant-predict", true, "keep the compiled quantized predictor in the bundle (v4; hist-trained forests only); false drops it and writes a v3 bundle")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	scale := experiments.Small()
	if *scaleName == "full" {
		scale = experiments.Full()
	}
	sp, perr := tree.ParseSplitter(*splitter)
	if perr != nil {
		log.Fatal(perr)
	}
	scale.Splitter = sp
	scale.Bins = *bins

	var (
		ctx *experiments.Context
		err error
	)
	if *spillDir != "" {
		if *data != "" {
			log.Fatal("-spill-dir and -data are mutually exclusive")
		}
		fr, err := frame.OpenSpill(*spillDir)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		chunks := fr.NumChunks()
		m, err := core.TrainFrame(fr, scale.TrainConfig())
		fr.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained out of core on %d samples (%.1f%% saturated, %d chunks) in %s\n",
			m.TrainSamples, 100*m.TrainSaturatedFrac, chunks, time.Since(start).Round(time.Millisecond))
		ctx = &experiments.Context{Scale: scale, Model: m}
	} else if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := dataset.ReadCSV(f, pcp.DefaultCatalog())
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		m, err := core.Train(ds, scale.TrainConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained on %d samples (%.1f%% saturated) in %s\n",
			len(ds.Samples), 100*ds.SaturatedFraction(), time.Since(start).Round(time.Millisecond))
		ctx = &experiments.Context{Scale: scale, Model: m}
	} else {
		start := time.Now()
		ctx, err = experiments.NewContext(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d samples and trained in %s (%d engineered features)\n",
			ctx.Model.TrainSamples, time.Since(start).Round(time.Millisecond), ctx.Model.Pipeline.NumOutputs())
	}

	if !*quantPred {
		ctx.Model.Forest.DropQuant()
	}
	if err := core.SaveBundleFile(*out, ctx.Model, scale.Seed); err != nil {
		log.Fatal(err)
	}
	if q := ctx.Model.Forest.Quant(); q != nil {
		fmt.Printf("compiled quantized predictor: %d/%d nodes on uint8 codes over %d columns\n",
			q.QuantNodes(), q.QuantNodes()+q.FloatNodes(), q.NumSlots())
	}
	fmt.Printf("model bundle (v%d) saved to %s\n", core.BundleVersionFor(ctx.Model), *out)

	if *table4 {
		experiments.PrintTable4(os.Stdout, experiments.Table4(ctx, 30))
	}
	if *rules {
		if ctx.Report == nil {
			log.Fatal("-rules requires in-process generation (omit -data)")
		}
		tab := features.FromDataset(ctx.Report.Dataset)
		distilled, err := ctx.Model.DistillRules(tab, 3)
		if err != nil {
			log.Fatal(err)
		}
		fidelity, err := ctx.Model.SurrogateFidelity(tab, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("distilled scaling rules (depth-3 surrogate, %.1f%% agreement with the forest):\n", 100*fidelity)
		for i, r := range distilled {
			if i >= 8 {
				break
			}
			fmt.Println(" ", r)
		}
	}
	if *table3 {
		if ctx.Report == nil {
			log.Fatal("-table3 requires in-process generation (omit -data)")
		}
		elgg, err := experiments.CollectElgg(ctx)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := experiments.Table3(ctx, elgg)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable3(os.Stdout, rows)
	}
}
