// Command datagen executes the paper's Table 1 training configurations on
// the simulator and writes the labeled corpus as CSV.
//
// Usage:
//
//	datagen -out training.csv [-duration 900] [-ramp 500] [-runs 1,2,8] [-seed 42] [-catalog default|full] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"monitorless/internal/dataset"
	"monitorless/internal/experiments"
	"monitorless/internal/parallel"
	"monitorless/internal/pcp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		out       = flag.String("out", "training.csv", "output CSV path ('-' for stdout)")
		catalog   = flag.String("catalog", "default", "metric catalog: default (~290 metrics) or full (the paper's 952 host + 88 container)")
		duration  = flag.Int("duration", 900, "measured seconds per run")
		ramp      = flag.Int("ramp", 500, "threshold-discovery ramp seconds")
		runs      = flag.String("runs", "", "comma-separated Table 1 run IDs (default: all 25)")
		seed      = flag.Int64("seed", 42, "random seed")
		summary   = flag.Bool("summary", true, "print the per-run summary to stderr")
		workers   = flag.Int("parallel", 0, "worker pool size for concurrent run groups (0 = GOMAXPROCS)")
		spillDir  = flag.String("spill-dir", "", "stream the corpus to this directory as column-major chunks instead of CSV (flat generation memory; train reads it with -spill-dir)")
		chunkRows = flag.Int("chunk-rows", 0, "rows per spilled chunk (0 = default)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	cfgs := dataset.Table1()
	if *runs != "" {
		want := map[int]bool{}
		for _, part := range strings.Split(*runs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -runs entry %q: %v", part, err)
			}
			want[id] = true
		}
		var filtered []dataset.RunConfig
		for _, c := range cfgs {
			if want[c.ID] {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("-runs %q matched no Table 1 rows", *runs)
		}
		cfgs = filtered
	}

	opts := dataset.GenOptions{
		Duration:    *duration,
		RampSeconds: *ramp,
		Seed:        *seed,
	}
	switch *catalog {
	case "default":
	case "full":
		opts.Catalog = pcp.FullCatalog()
	default:
		log.Fatalf("unknown -catalog %q (want default or full)", *catalog)
	}
	if *spillDir != "" {
		// Out-of-core path: sealed chunks flush to disk as generation
		// advances, so memory stays flat regardless of corpus size. The
		// spill directory (manifest + chunks + labels) is the output;
		// no CSV is written.
		opts.SpillDir = *spillDir
		opts.ChunkRows = *chunkRows
		fr, _, err := dataset.GenerateFrame(cfgs, opts)
		if err != nil {
			log.Fatal(err)
		}
		defer fr.Close()
		bytes := int64(fr.Rows()) * int64(fr.NumCols()) * 8
		fmt.Fprintf(os.Stderr, "spilled %d rows x %d cols (%.1f MiB in %d chunks of %d rows) to %s\n",
			fr.Rows(), fr.NumCols(), float64(bytes)/(1<<20), fr.NumChunks(), fr.ChunkRows(), *spillDir)
		return
	}

	rep, err := dataset.Generate(cfgs, opts)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := rep.Dataset.WriteCSV(w); err != nil {
		log.Fatal(err)
	}

	if *summary {
		fmt.Fprintf(os.Stderr, "%d samples over %d runs, %.1f%% saturated\n",
			len(rep.Dataset.Samples), len(rep.Dataset.RunIDs()), 100*rep.Dataset.SaturatedFraction())
		ctx := &experiments.Context{Report: rep}
		experiments.PrintTable1(os.Stderr, experiments.Table1Summary(ctx))
	}
}
