// Command serve runs the monitorless online inference service: it loads a
// trained model bundle and serves per-instance saturation predictions over
// HTTP, maintaining incremental per-instance feature state so each
// ingested sample costs O(features) instead of re-running the batch
// pipeline. With -replay it instead drives the Table 7 TeaStore autoscaling
// simulation through the HTTP API and verifies the online path makes
// exactly the decisions of the in-process orchestrator.
//
// Usage:
//
//	serve -model model.gob [-addr 127.0.0.1:9090] [-debounce-k 3] [-debounce-n 5]
//	serve -model model.gob -replay [-duration 1100] [-target http://host:port]
//
// Endpoints: POST /ingest, GET /predict, GET /apps, DELETE /instances?id=,
// GET /schema, GET /healthz, GET /metrics (Prometheus text), GET/POST /model
// (model identity, drift scores, swap history; POST hot-swaps a bundle).
//
// The model lifecycle plane is controlled by -drift-window (per-app drift
// scoring against the bundle's training fingerprint), -swap-policy
// (off|shadow|auto shadow retraining from labeled ingest samples) and
// -retrain-interval (how often the challenger is refit and compared).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"monitorless/internal/apps"
	"monitorless/internal/autoscale"
	"monitorless/internal/core"
	"monitorless/internal/experiments"
	"monitorless/internal/lifecycle"
	"monitorless/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var (
		modelPath  = flag.String("model", "model.gob", "trained model bundle (from cmd/train)")
		addr       = flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
		debounceK  = flag.Int("debounce-k", 3, "raise an app alarm when ≥K of the last N raw decisions were saturated")
		debounceN  = flag.Int("debounce-n", 5, "debounce window length in ticks")
		clearBelow = flag.Int("clear-below", 1, "clear the alarm when fewer than this many positives remain in the window")
		shards     = flag.Int("shards", 0, "instance-state shard count, rounded up to a power of two (0 = default)")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
		replay     = flag.Bool("replay", false, "replay the Table 7 TeaStore loop through the HTTP API and verify it matches the in-process path")
		target     = flag.String("target", "", "replay: existing serve instance to drive (default: self-host on a loopback port)")
		duration   = flag.Int("duration", 1100, "replay: simulated seconds")
		seed       = flag.Int64("seed", 54, "replay: simulation seed")

		quantPred   = flag.Bool("quant-predict", true, "route batch prediction through the bundle's compiled quantized predictor when present (false forces the float path)")
		fusedIngest = flag.Bool("fused-ingest", true, "quantize engineered ingest columns straight into the forest's code slab when the predictor is fully quantized (false forces the float scratch-frame route)")

		driftWindow = flag.Int("drift-window", 0, "per-app drift window in samples (0 = default 2048, -1 = disable drift scoring)")
		swapPolicy  = flag.String("swap-policy", "off", "shadow-retrain policy: off | shadow (train+compare only) | auto (promote winning challengers)")
		retrainIvl  = flag.Duration("retrain-interval", 10*time.Minute, "how often the shadow challenger is refit and compared")
		reservoir   = flag.Int("reservoir", 0, "labeled-sample reservoir capacity for shadow retraining (0 = default 8192)")
	)
	flag.Parse()

	b, err := core.LoadBundleFile(*modelPath)
	if err != nil {
		log.Fatalf("%v (train one with: go run ./cmd/train -out %s)", err, *modelPath)
	}
	fmt.Printf("loaded model bundle v%d: %d trees, threshold %.2f, %d raw metrics, schema %.12s…\n",
		b.Version, b.Model.Forest.NumTrees(), b.Model.Threshold, len(b.Model.RawNames()), b.SchemaHash)
	if !*quantPred {
		b.Model.Forest.SetQuantPredict(false)
	}
	if b.Model.Forest.QuantActive() {
		q := b.Model.Forest.Quant()
		fmt.Printf("quantized batch predict: on (%d/%d nodes on uint8 codes)\n",
			q.QuantNodes(), q.QuantNodes()+q.FloatNodes())
		switch {
		case !q.FullyQuantized():
			fmt.Println("fused ingest: off (forest has float side-channel nodes)")
		case !*fusedIngest:
			fmt.Println("fused ingest: off (-fused-ingest=false)")
		default:
			fmt.Println("fused ingest: on (engineered columns quantize straight into the code slab)")
		}
	} else {
		fmt.Println("quantized batch predict: off (float tree walk)")
	}

	svc, err := serving.New(serving.Config{
		Model:              b.Model,
		BundleVersion:      b.Version,
		DebounceK:          *debounceK,
		DebounceN:          *debounceN,
		ClearBelow:         *clearBelow,
		Shards:             *shards,
		DriftWindow:        *driftWindow,
		DisableFusedIngest: !*fusedIngest,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance state sharded %d ways\n", svc.NumShards())
	if *driftWindow >= 0 && svc.Drift() == nil {
		fmt.Println("drift scoring disabled: bundle carries no training fingerprint (retrain with a v3 bundle)")
	}

	mg, err := buildLifecycle(svc, b.Model, *swapPolicy, *reservoir)
	if err != nil {
		log.Fatal(err)
	}

	if *replay {
		if err := runReplay(svc, b.Model, *target, *duration, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServe(svc, mg, *retrainIvl, *addr, *drain); err != nil {
		log.Fatal(err)
	}
}

// buildLifecycle assembles the shadow-retrain manager around the serving
// plane: labeled ingest samples feed its reservoir, challenger promotions
// go through the service's atomic hot swap, and per-outcome counters land
// on the service's metrics registry. Returns nil for policy "off".
func buildLifecycle(svc *serving.Service, champion *core.Model, policy string, reservoirCap int) (*lifecycle.Manager, error) {
	pol, err := lifecycle.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	if pol == lifecycle.PolicyOff {
		return nil, nil
	}
	outcomes := make(map[string]*serving.Counter, 4)
	for _, o := range []string{"win", "loss", "skip", "error"} {
		outcomes[o] = svc.Registry().Counter("monitorless_retrain_rounds_total",
			"Shadow retrain rounds by outcome.", serving.Labels{"outcome": o})
	}
	mg, err := lifecycle.NewManager(lifecycle.Config{
		Champion:     champion,
		Policy:       pol,
		ReservoirCap: reservoirCap,
		Swap: func(m *core.Model, trainSamples int, reason string) error {
			_, err := svc.Swap(m, 0, reason)
			return err
		},
		Harvest: svc.HarvestDrift,
		OnOutcome: func(o string) {
			if c := outcomes[o]; c != nil {
				c.Inc()
			}
		},
	})
	if err != nil {
		return nil, err
	}
	svc.SetLabelSink(mg.Reservoir)
	fmt.Printf("shadow retraining enabled: policy %s, reservoir %d labeled samples\n", pol, mg.Reservoir.Cap())
	return mg, nil
}

// runServe hosts the service until SIGINT/SIGTERM, then drains in-flight
// requests before exiting. When a lifecycle manager is attached, its
// retrain loop runs alongside the server and stops with it.
func runServe(svc *serving.Service, mg *lifecycle.Manager, retrainIvl time.Duration, addr string, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	handler := serving.NewServer(svc)
	if mg != nil {
		handler.AttachLifecycle(mg)
		go mg.Run(ctx, retrainIvl)
	}
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Printf("serving on http://%s (POST /ingest, GET /predict /apps /schema /healthz /metrics /model)\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- server.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately
	fmt.Println("signal received, draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("drained cleanly")
	return nil
}

// runReplay closes the §2 loop over the wire: it simulates the Table 7
// TeaStore scenario twice with the monitorless policy — once with the
// in-process orchestrator, once with every prediction fetched from the
// HTTP API — and verifies the two runs make identical per-tick scaling
// decisions.
func runReplay(svc *serving.Service, m *core.Model, target string, duration int, seed int64) error {
	build := func() (*autoscale.Env, error) {
		eng, tea, err := experiments.BuildTeaStore(experiments.SockshopInterferenceRate, 7)(
			apps.TeaStoreLoad(experiments.TeaStoreBase, 9))
		if err != nil {
			return nil, err
		}
		return &autoscale.Env{Engine: eng, Target: tea, Cluster: eng.Cluster()}, nil
	}
	opt := autoscale.Options{
		Duration:        duration,
		ReplicaLifespan: 120,
		SLORt:           0.75,
		SLOFailFrac:     0.10,
		Couple:          [][]string{{"recommender", "auth"}},
		Seed:            seed,
	}

	record := func(dst *[]string) func(int, []string) {
		return func(t int, targets []string) {
			if len(targets) > 0 {
				*dst = append(*dst, fmt.Sprintf("t=%d scale-out %s", t, strings.Join(targets, ",")))
			}
		}
	}

	var localDecisions []string
	optLocal := opt
	optLocal.OnDecision = record(&localDecisions)
	start := time.Now()
	resLocal, err := autoscale.Simulate(build, autoscale.MonitorlessScaler{}, m, optLocal)
	if err != nil {
		return fmt.Errorf("in-process replay: %w", err)
	}
	fmt.Printf("in-process: %d ticks in %s, %d scale-outs, %d SLO violations, +%.1f%% provisioning\n",
		duration, time.Since(start).Round(time.Millisecond), resLocal.ScaleOuts, resLocal.SLOViolations, resLocal.ProvisioningPct)

	if target == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		server := &http.Server{Handler: serving.NewServer(svc), ReadHeaderTimeout: 5 * time.Second}
		go server.Serve(ln)
		defer server.Close()
		target = "http://" + ln.Addr().String()
		fmt.Printf("self-hosted model server on %s\n", target)
	}
	client := serving.NewClient(target)

	var remoteDecisions []string
	optRemote := opt
	optRemote.Predictor = client
	optRemote.OnDecision = record(&remoteDecisions)
	start = time.Now()
	resRemote, err := autoscale.Simulate(build, autoscale.MonitorlessScaler{}, nil, optRemote)
	if err != nil {
		return fmt.Errorf("HTTP replay: %w", err)
	}
	fmt.Printf("over HTTP:  %d ticks in %s, %d scale-outs, %d SLO violations, +%.1f%% provisioning\n",
		duration, time.Since(start).Round(time.Millisecond), resRemote.ScaleOuts, resRemote.SLOViolations, resRemote.ProvisioningPct)

	if a, b := strings.Join(localDecisions, "\n"), strings.Join(remoteDecisions, "\n"); a != b {
		return fmt.Errorf("online path DIVERGES from offline decisions:\n--- in-process ---\n%s\n--- HTTP ---\n%s", a, b)
	}
	if resLocal != resRemote {
		return fmt.Errorf("simulation results diverge:\nin-process %+v\nHTTP       %+v", resLocal, resRemote)
	}
	for _, d := range localDecisions {
		fmt.Println("  ", d)
	}
	fmt.Printf("online path reproduces the offline policy decisions exactly (%d decision ticks)\n", len(localDecisions))

	stats, err := client.Healthz()
	if err != nil {
		return err
	}
	fmt.Printf("server stats: %d instances tracked, %.0f samples ingested\n", stats.Instances, stats.SamplesTotal)
	return nil
}
