// Command evaluate scores the monitorless model on the paper's three
// evaluation applications (Tables 5, 6 and 8) and optionally emits the
// Figure 3 prediction series.
//
// Usage:
//
//	evaluate -app elgg|teastore|sockshop [-model model.gob] [-scale small|full] [-series]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"monitorless/internal/core"
	"monitorless/internal/experiments"
	"monitorless/internal/pcp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaluate: ")

	var (
		app       = flag.String("app", "teastore", "evaluation application: elgg, teastore or sockshop")
		modelPath = flag.String("model", "", "trained model (default: train in-process)")
		scaleName = flag.String("scale", "small", "experiment scale: small or full")
		series    = flag.Bool("series", false, "emit the Figure 3 marker series (teastore only)")
	)
	flag.Parse()

	scale := experiments.Small()
	if *scaleName == "full" {
		scale = experiments.Full()
	}

	var ctx *experiments.Context
	if *modelPath != "" {
		b, err := core.LoadBundleFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.CheckSchema(pcp.DefaultCatalog().CombinedNames()); err != nil {
			log.Fatal(err)
		}
		ctx = &experiments.Context{Scale: scale, Model: b.Model}
	} else {
		var err error
		fmt.Fprintln(os.Stderr, "no -model given: generating training data and training in-process...")
		ctx, err = experiments.NewContext(scale)
		if err != nil {
			log.Fatal(err)
		}
	}

	switch *app {
	case "elgg":
		data, err := experiments.CollectElgg(ctx)
		if err != nil {
			log.Fatal(err)
		}
		table, err := experiments.Table5(ctx, data)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEvalTable(os.Stdout, table)
	case "teastore":
		data, err := experiments.CollectTeaStore(ctx)
		if err != nil {
			log.Fatal(err)
		}
		table, perInst, err := experiments.Table6(ctx, data)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEvalTable(os.Stdout, table)
		fig := experiments.Figure3(data, perInst)
		experiments.PrintFigure3(os.Stdout, fig, *series)
	case "sockshop":
		data, err := experiments.CollectSockshop(ctx)
		if err != nil {
			log.Fatal(err)
		}
		table, err := experiments.Table8(ctx, data)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEvalTable(os.Stdout, table)
	default:
		log.Fatalf("unknown -app %q (want elgg, teastore or sockshop)", *app)
	}
}
