// Command experiments regenerates every table and figure of the paper in
// order: Figure 2, Tables 1–8 and Figure 3.
//
// Usage:
//
//	experiments [-scale small|full] [-run all|fig2|table1|...|table8|fig3|ablation] [-series]
//
// -scale small (default) runs everything in a couple of minutes; -scale
// full approaches the paper's run lengths and forest size.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"monitorless/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		scaleName = flag.String("scale", "small", "experiment scale: small or full")
		run       = flag.String("run", "all", "comma-separated experiment list (all, fig2, table1..table8, fig3, ablation)")
		series    = flag.Bool("series", false, "emit full data series for the figures")
	)
	flag.Parse()

	scale := experiments.Small()
	if *scaleName == "full" {
		scale = experiments.Full()
	}

	want := map[string]bool{}
	for _, part := range strings.Split(*run, ",") {
		want[strings.TrimSpace(part)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	start := time.Now()

	// Figure 2 needs no trained model.
	if sel("fig2") {
		fig, err := experiments.Figure2(scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFigure2(os.Stdout, fig, *series)
		fmt.Println()
	}

	needCtx := sel("table1") || sel("table2") || sel("table3") || sel("table4") ||
		sel("table5") || sel("table6") || sel("table7") || sel("table8") || sel("fig3") ||
		sel("ablation")
	if !needCtx {
		return
	}

	fmt.Fprintf(os.Stderr, "building context (Table 1 corpus + model) at scale %q...\n", scale.Name)
	ctx, err := experiments.NewContext(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "context ready after %s: %d samples, %.1f%% saturated, %d features\n",
		time.Since(start).Round(time.Millisecond), ctx.Model.TrainSamples,
		100*ctx.Model.TrainSaturatedFrac, ctx.Model.Pipeline.NumOutputs())

	if sel("table1") {
		experiments.PrintTable1(os.Stdout, experiments.Table1Summary(ctx))
		fmt.Println()
	}
	if sel("table2") {
		rows, err := experiments.Table2(ctx, 2500)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}

	var elgg *experiments.EvalData
	if sel("table3") || sel("table5") || sel("ablation") {
		elgg, err = experiments.CollectElgg(ctx)
		if err != nil {
			log.Fatal(err)
		}
	}
	if sel("table3") {
		rows, err := experiments.Table3(ctx, elgg)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable3(os.Stdout, rows)
		fmt.Println()
	}
	if sel("table4") {
		experiments.PrintTable4(os.Stdout, experiments.Table4(ctx, 30))
		fmt.Println()
	}
	if sel("table5") {
		table, err := experiments.Table5(ctx, elgg)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEvalTable(os.Stdout, table)
		fmt.Println()
	}

	var table6 *experiments.EvalTable
	var teaData *experiments.EvalData
	if sel("table6") || sel("fig3") || sel("table7") || sel("ablation") {
		data, err := experiments.CollectTeaStore(ctx)
		if err != nil {
			log.Fatal(err)
		}
		teaData = data
		var perInst map[string][]int
		table6, perInst, err = experiments.Table6(ctx, data)
		if err != nil {
			log.Fatal(err)
		}
		if sel("table6") {
			experiments.PrintEvalTable(os.Stdout, table6)
			fmt.Println()
		}
		if sel("fig3") {
			fig := experiments.Figure3(data, perInst)
			experiments.PrintFigure3(os.Stdout, fig, *series)
			fmt.Println()
		}
	}
	if sel("table7") {
		rows, err := experiments.Table7(ctx, table6)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable7(os.Stdout, rows)
		fmt.Println()
	}
	if sel("ablation") {
		rows, err := experiments.Ablation(ctx, elgg, teaData)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintAblation(os.Stdout, rows)
		fmt.Println()
	}
	if sel("table8") {
		data, err := experiments.CollectSockshop(ctx)
		if err != nil {
			log.Fatal(err)
		}
		table, err := experiments.Table8(ctx, data)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEvalTable(os.Stdout, table)
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}
