// Command experiments regenerates every table and figure of the paper in
// order: Figure 2, Tables 1–8 and Figure 3.
//
// Usage:
//
//	experiments [-scale small|full] [-run all|fig2|table1|...|table8|fig3|ablation] [-series] [-parallel N]
//
// -scale small (default) runs everything in a couple of minutes; -scale
// full approaches the paper's run lengths and forest size. -parallel
// bounds the shared worker pool (0 = GOMAXPROCS); results are identical
// at any setting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"monitorless/internal/experiments"
	"monitorless/internal/ml/tree"
	"monitorless/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		scaleName = flag.String("scale", "small", "experiment scale: small or full")
		run       = flag.String("run", "all", "comma-separated experiment list (all, fig2, table1..table8, fig3, ablation)")
		series    = flag.Bool("series", false, "emit full data series for the figures")
		workers   = flag.Int("parallel", 0, "worker pool size for the parallel sweeps (0 = GOMAXPROCS)")
		splitter  = flag.String("splitter", "exact", "forest split search: exact (sorted scans, the parity reference) or hist (histogram-binned, fast retraining)")
		bins      = flag.Int("bins", 256, "max quantile bins per column for -splitter hist (2..256)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	scale := experiments.Small()
	if *scaleName == "full" {
		scale = experiments.Full()
	}
	sp, err := tree.ParseSplitter(*splitter)
	if err != nil {
		log.Fatal(err)
	}
	scale.Splitter = sp
	scale.Bins = *bins

	want := map[string]bool{}
	for _, part := range strings.Split(*run, ",") {
		want[strings.TrimSpace(part)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	start := time.Now()

	// Figure 2 needs no trained model.
	if sel("fig2") {
		fig, err := experiments.Figure2(scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFigure2(os.Stdout, fig, *series)
		fmt.Println()
	}

	needCtx := sel("table1") || sel("table2") || sel("table3") || sel("table4") ||
		sel("table5") || sel("table6") || sel("table7") || sel("table8") || sel("fig3") ||
		sel("ablation")
	if !needCtx {
		return
	}

	fmt.Fprintf(os.Stderr, "building context (Table 1 corpus + model) at scale %q...\n", scale.Name)
	ctx, err := experiments.NewContext(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "context ready after %s: %d samples, %.1f%% saturated, %d features\n",
		time.Since(start).Round(time.Millisecond), ctx.Model.TrainSamples,
		100*ctx.Model.TrainSaturatedFrac, ctx.Model.Pipeline.NumOutputs())

	if sel("table1") {
		experiments.PrintTable1(os.Stdout, experiments.Table1Summary(ctx))
		fmt.Println()
	}
	if sel("table2") {
		rows, err := experiments.Table2(ctx, 2500)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}

	// The evaluation runs behind Tables 3/5/6/8, Figure 3 and the ablation
	// are independent simulations; collect every one the selection needs
	// concurrently before printing the tables in paper order.
	needElgg := sel("table3") || sel("table5") || sel("ablation")
	needTea := sel("table6") || sel("fig3") || sel("table7") || sel("ablation")
	needSock := sel("table8")
	evals, err := experiments.CollectEvals(ctx, needElgg, needTea, needSock)
	if err != nil {
		log.Fatal(err)
	}

	if sel("table3") {
		rows, err := experiments.Table3(ctx, evals.Elgg)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable3(os.Stdout, rows)
		fmt.Println()
	}
	if sel("table4") {
		experiments.PrintTable4(os.Stdout, experiments.Table4(ctx, 30))
		fmt.Println()
	}
	if sel("table5") {
		table, err := experiments.Table5(ctx, evals.Elgg)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEvalTable(os.Stdout, table)
		fmt.Println()
	}

	var table6 *experiments.EvalTable
	if needTea {
		var perInst map[string][]int
		table6, perInst, err = experiments.Table6(ctx, evals.TeaStore)
		if err != nil {
			log.Fatal(err)
		}
		if sel("table6") {
			experiments.PrintEvalTable(os.Stdout, table6)
			fmt.Println()
		}
		if sel("fig3") {
			fig := experiments.Figure3(evals.TeaStore, perInst)
			experiments.PrintFigure3(os.Stdout, fig, *series)
			fmt.Println()
		}
	}
	if sel("table7") {
		rows, err := experiments.Table7(ctx, table6)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable7(os.Stdout, rows)
		fmt.Println()
	}
	if sel("ablation") {
		rows, err := experiments.Ablation(ctx, evals.Elgg, evals.TeaStore)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintAblation(os.Stdout, rows)
		fmt.Println()
	}
	if sel("table8") {
		table, err := experiments.Table8(ctx, evals.Sockshop)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEvalTable(os.Stdout, table)
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}
