module monitorless

go 1.22
